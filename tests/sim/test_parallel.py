"""Tests for the sharded conservative-lookahead parallel engine.

The contract under test is the one the module docstring states: a run
at ``--shards N`` is bit-identical to ``--shards 1``, the legacy
no-shards path is untouched and produces the same *content* (timings,
application state), and runs that cannot shard fall back to a serial
engine rather than diverging.
"""

import numpy as np
import pytest

from repro.network.params import ABE, SURVEYOR
from repro.network.topology import (
    FatTree,
    TopologyError,
    shard_nodes,
    shard_of_node,
)
from repro.sim.parallel import (
    ParallelEngineError,
    _encode_args,
    encode_record,
    resolve_shards,
)

# ---------------------------------------------------------------------------
# PE -> shard assignment
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("n_nodes,n_shards", [
    (1, 1), (4, 1), (4, 2), (4, 4), (7, 3), (10, 4), (5, 5),
])
def test_shard_nodes_partitions_contiguously(n_nodes, n_shards):
    topo = FatTree(n_nodes, 4)
    blocks = shard_nodes(topo, n_shards)
    assert len(blocks) == n_shards
    # contiguous, non-empty, covering every node exactly once
    assert blocks[0].start == 0
    assert blocks[-1].stop == n_nodes
    for a, b in zip(blocks, blocks[1:]):
        assert a.stop == b.start
    for blk in blocks:
        assert len(blk) >= 1
    # remainder goes to the leading shards: sizes are non-increasing
    sizes = [len(b) for b in blocks]
    assert sizes == sorted(sizes, reverse=True)


def test_shard_of_node_matches_shard_nodes():
    topo = FatTree(10, 4)
    for n_shards in (1, 2, 3, 4, 7, 10):
        blocks = shard_nodes(topo, n_shards)
        for s, blk in enumerate(blocks):
            for node in blk:
                assert shard_of_node(topo, node, n_shards) == s


def test_shard_nodes_rejects_bad_counts():
    topo = FatTree(4, 4)
    with pytest.raises(TopologyError):
        shard_nodes(topo, 0)
    with pytest.raises(TopologyError):
        shard_nodes(topo, 5)


# ---------------------------------------------------------------------------
# Shard-count resolution
# ---------------------------------------------------------------------------


def test_resolve_shards_default_is_none(monkeypatch):
    monkeypatch.delenv("REPRO_SHARDS", raising=False)
    assert resolve_shards() is None


def test_resolve_shards_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "8")
    assert resolve_shards(2) == 2
    with pytest.raises(ParallelEngineError, match="at least 1"):
        resolve_shards(0)


def test_resolve_shards_env(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "4")
    assert resolve_shards() == 4
    monkeypatch.setenv("REPRO_SHARDS", "  ")
    assert resolve_shards() is None


def test_resolve_shards_env_junk_raises(monkeypatch):
    monkeypatch.setenv("REPRO_SHARDS", "many")
    with pytest.raises(ParallelEngineError):
        resolve_shards()


# ---------------------------------------------------------------------------
# Wire codec guard rails
# ---------------------------------------------------------------------------


def _record(payload):
    return (1e-6, 8, 0, 0, 0.0, 0.0, 1024, payload)


def test_encode_record_rejects_bare_callback():
    with pytest.raises(ParallelEngineError):
        encode_record(_record(lambda: None))


def test_encode_record_rejects_local_handle_put():
    with pytest.raises(ParallelEngineError):
        encode_record(_record(("lput", object())))


def test_encode_record_rejects_unknown_kind():
    with pytest.raises(ParallelEngineError):
        encode_record(_record(("mystery", 1)))


def test_encode_args_rejects_host_callbacks():
    from repro.charm.callback import CkCallback

    with pytest.raises(ParallelEngineError):
        _encode_args((CkCallback.host(lambda _v: None),))


# ---------------------------------------------------------------------------
# Bit-identity: shards N == shards 1 == legacy content
# ---------------------------------------------------------------------------


def _stencil(shards, machine=ABE, **kw):
    from repro.apps.stencil.driver import gather_grid, run_stencil

    r = run_stencil(machine, 16, domain=(16, 16, 16), vr=2, iterations=3,
                    mode="ckd", validate=True, keep_runtime=True,
                    shards=shards, **kw)
    return r, gather_grid(r)


def test_stencil_bit_identical_across_shards():
    legacy, legacy_grid = _stencil(None)
    one, one_grid = _stencil(1)
    two, two_grid = _stencil(2)

    # legacy vs engine: same content (the engine adds admission wake
    # events, so events_processed legitimately differs)
    assert one.iter_times == legacy.iter_times
    assert np.array_equal(one_grid, legacy_grid)

    # engine baseline vs sharded: bit-identical, including event counts
    assert two.iter_times == one.iter_times
    assert two.events == one.events
    assert np.array_equal(two_grid, one_grid)


def test_stencil_four_shards_on_torus():
    # Surveyor: 4 cores/node, so 16 PEs = 4 nodes = 4 real shards, and
    # the BG/P torus lookahead path is exercised.
    one, one_grid = _stencil(1, machine=SURVEYOR)
    four, four_grid = _stencil(4, machine=SURVEYOR)
    assert four.iter_times == one.iter_times
    assert four.events == one.events
    assert np.array_equal(four_grid, one_grid)


def test_matmul_bit_identical_across_shards():
    from repro.apps.matmul.driver import gather_c, run_matmul

    def run(shards):
        r = run_matmul(ABE, 16, N=32, c=2, iterations=3, mode="ckd",
                       validate=True, keep_runtime=True, shards=shards)
        return r, gather_c(r)

    one, c_one = run(1)
    two, c_two = run(2)
    assert two.iter_times == one.iter_times
    assert two.events == one.events
    assert np.array_equal(c_two, c_one)


def test_openatom_bit_identical_across_shards():
    from repro.apps.openatom.driver import abe_2cpn, run_openatom

    def run(shards):
        r = run_openatom(abe_2cpn(ABE), 16, mode="ckd", validate=True,
                         keep_runtime=True, shards=shards, nstates=8,
                         nplanes=2, grain=4, points_per_plane=64,
                         iterations=2, rest_rounds=2)
        state = []
        for arr in r.runtime.arrays.values():
            if arr.internal:
                continue
            for idx in sorted(arr.elements):
                elem = arr.elements[idx]
                if getattr(elem, "points", None) is not None:
                    state.append(elem.points)
                elif getattr(elem, "left", None) is not None:
                    state.extend([elem.left, elem.right])
        return r, state

    one, s_one = run(1)
    four, s_four = run(4)  # 8 nodes at 2 cores/node: 4 real shards
    assert four.step_times == one.step_times
    assert four.events == one.events
    assert len(s_four) == len(s_one)
    for a, b in zip(s_four, s_one):
        assert np.array_equal(a, b)


# ---------------------------------------------------------------------------
# Serial fallbacks
# ---------------------------------------------------------------------------


def test_fault_runs_fall_back_and_stay_identical():
    from repro.apps.stencil.driver import run_stencil

    def run(shards):
        return run_stencil(ABE, 16, domain=(16, 16, 16), vr=2, iterations=3,
                           mode="ckd", validate=True, keep_runtime=True,
                           faults="drop", shards=shards)

    one = run(1)
    four = run(4)
    # the engine is never armed under fault injection …
    assert not one.runtime.fabric._engine
    assert not four.runtime.fabric._engine
    # … so any shard count produces the legacy faulted run exactly
    assert four.iter_times == one.iter_times
    assert four.events == one.events


def test_legacy_path_untouched_without_shards():
    from repro.apps.stencil.driver import run_stencil

    r = run_stencil(ABE, 16, domain=(8, 8, 8), vr=1, iterations=2,
                    mode="msg", keep_runtime=True)
    assert not r.runtime.fabric._engine
    assert r.runtime.shards is None


def test_shards_clamped_to_node_count():
    # 2 nodes on Abe at 16 PEs: requesting 8 shards must still match
    # the 1-shard engine baseline bit-for-bit (clamped to 2).
    eight, eight_grid = _stencil(8)
    one, one_grid = _stencil(1)
    assert eight.iter_times == one.iter_times
    assert eight.events == one.events
    assert np.array_equal(eight_grid, one_grid)


def test_runtime_rejects_bad_shard_count():
    from repro.charm import Runtime
    from repro.charm.runtime import CharmError

    with pytest.raises(CharmError):
        Runtime(ABE, 16, shards=0)
