"""Unit tests for the CkDirect API happy paths on both machines."""

import numpy as np
import pytest

from repro import Buffer
from repro import ckdirect as ckd
from repro.ckdirect.handle import ChannelState

from tests.ckdirect.channel_helpers import Endpoint


def test_put_delivers_data_and_fires_callback(channel):
    rt, arr, recv, send, handle = channel
    arr.proxy[1].do_put(handle)
    rt.run()
    assert np.array_equal(recv.recv_arr, send.send_arr)
    assert len(recv.fired) == 1
    assert handle.state is ChannelState.CONSUMED
    assert handle.puts_completed == 1
    assert handle.bytes_received == recv.recv_buf.nbytes


def test_callback_gets_cbdata(machine):
    from repro import Runtime
    from tests.ckdirect.channel_helpers import CROSS

    rt = Runtime(machine, n_pes=2 * machine.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle(cbdata={"tag": 7})
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert recv.fired[0][1] == {"tag": 7}


def test_iterated_puts_with_ready(channel):
    rt, arr, recv, send, handle = channel
    for i in range(5):
        send.send_arr[:] = float(i + 1)
        arr.proxy[1].do_put(handle)
        rt.run()
        assert np.all(recv.recv_arr == float(i + 1))
        arr.proxy[0].do_ready(handle)
        rt.run()
    assert handle.puts_completed == 5
    assert len(recv.fired) == 5


def test_ready_mark_then_pollq_split(channel):
    """The two-phase re-arm: data may arrive while only MARKED; the
    deferred ReadyPollQ still detects it (no message lost, §2.1)."""
    rt, arr, recv, send, handle = channel
    arr.proxy[1].do_put(handle)
    rt.run()
    arr.proxy[0].do_ready_mark(handle)
    rt.run()
    # second put arrives while the handle is not being polled
    arr.proxy[1].do_put(handle)
    rt.run()
    if rt.machine.kind == "ib":
        assert len(recv.fired) == 1  # not yet detected
        assert handle.state is ChannelState.DELIVERED
    arr.proxy[0].do_ready_pollq(handle)
    rt.run()
    assert len(recv.fired) == 2  # detected after polling resumed


def test_same_source_many_handles(machine):
    """One local buffer may feed several channels (paper §2)."""
    from repro import Runtime
    from repro.charm import CustomMap

    rt = Runtime(machine, n_pes=4 * machine.cores_per_node)
    arr = rt.create_array(
        Endpoint, dims=(3,),
        mapping=CustomMap(lambda idx, dims, n: idx[0] * machine.cores_per_node),
    )
    sender = arr.element(0)
    handles = []
    for i in (1, 2):
        h = arr.element(i).make_handle()
        ckd.assoc_local(sender, h, sender.send_buf)
        handles.append(h)

    class Go(Endpoint):
        pass

    for h in handles:
        arr.proxy[0].do_put(h)
    rt.run()
    for i in (1, 2):
        assert np.array_equal(arr.element(i).recv_arr, sender.send_arr)


def test_put_into_matrix_row_view(machine):
    """The §2 motivating case: data lands in a row in the middle of a
    matrix with no receiver copy."""
    from repro import Runtime
    from tests.ckdirect.channel_helpers import CROSS

    rt = Runtime(machine, n_pes=2 * machine.cores_per_node)

    class MatrixRecv(Endpoint):
        def __init__(self):
            super().__init__()
            self.matrix = np.zeros((6, 8))
            self.recv_buf = Buffer(array=self.matrix[3, :])

    arr = rt.create_array(MatrixRecv, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert np.array_equal(recv.matrix[3], send.send_arr)
    assert np.all(recv.matrix[[0, 1, 2, 4, 5]] == 0)


def test_virtual_buffers_timing_only(machine):
    from repro import Runtime
    from tests.ckdirect.channel_helpers import CROSS

    class VirtualEp(Endpoint):
        def __init__(self):
            self.recv_buf = Buffer(nbytes=4096)
            self.send_buf = Buffer(nbytes=4096)
            self.fired = []
            self.handle = None

    rt = Runtime(machine, n_pes=2 * machine.cores_per_node)
    arr = rt.create_array(VirtualEp, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert len(recv.fired) == 1


def test_paper_aliases_exported():
    assert ckd.CkDirect_createHandle is ckd.create_handle
    assert ckd.CkDirect_assocLocal is ckd.assoc_local
    assert ckd.CkDirect_put is ckd.put
    assert ckd.CkDirect_ready is ckd.ready
    assert ckd.CkDirect_readyMark is ckd.ready_mark
    assert ckd.CkDirect_readyPollQ is ckd.ready_poll_q


def test_same_pe_channel_works(machine):
    from repro import Runtime

    rt = Runtime(machine, n_pes=1)
    arr = rt.create_array(Endpoint, dims=(2,))
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert np.array_equal(recv.recv_arr, send.send_arr)
    assert len(recv.fired) == 1
