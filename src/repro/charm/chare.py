"""The Chare base class.

A chare is a message-driven object: any public method acts as an
*entry method* invokable through the array proxy.  The runtime binds
``rt``, ``thisIndex``, array, and home PE before the user constructor
runs, so constructors can already use them.

Inside an entry method the chare may:

* ``self.charge(seconds)`` — consume simulated compute time,
* ``self.charge_pack(nbytes)`` — consume one application-level memcpy
  (the cost CkDirect's in-place delivery elides),
* send to peers via ``self.proxy[...]`` / ``self.proxy.bcast``,
* ``self.contribute(...)`` — join a reduction / barrier over its array.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional, Tuple

from .callback import CkCallback
from .errors import ContextError

if TYPE_CHECKING:  # pragma: no cover
    from .array import ArrayProxy, ChareArray
    from .pe import PE
    from .runtime import Runtime


class Chare:
    """Base class for message-driven objects."""

    # Bound by the runtime in _bind(); declared for introspection.
    rt: "Runtime"
    thisIndex: Tuple[int, ...]

    def _bind(
        self, rt: "Runtime", array: "ChareArray", index: Tuple[int, ...], pe: "PE"
    ) -> None:
        self.rt = rt
        self._array = array
        self._pe = pe
        self.thisIndex = index
        #: per-collective contribution epoch counters (the whole array
        #: and each section this element belongs to count separately)
        self._reduction_seqs: dict = {}

    # ------------------------------------------------------------------

    @property
    def proxy(self) -> "ArrayProxy":
        """Proxy to this chare's array (``self.proxy[idx].method(...)``)."""
        return self._array.proxy

    @property
    def my_pe(self) -> int:
        """Home PE rank of this chare."""
        return self._pe.rank

    @property
    def index1d(self) -> int:
        """This element's index when the array is one-dimensional."""
        if len(self.thisIndex) != 1:
            raise ContextError(f"array is {len(self.thisIndex)}-D; use thisIndex")
        return self.thisIndex[0]

    @property
    def now(self) -> float:
        """This chare's local simulated time (its PE's cursor)."""
        return self._pe.cursor

    # ------------------------------------------------------------------
    # Time accounting
    # ------------------------------------------------------------------

    def charge(self, seconds: float) -> None:
        """Consume compute time on this chare's PE."""
        self._require_context()
        self._pe.charge(seconds)

    def charge_pack(self, nbytes: int) -> None:
        """Consume one application-level memcpy of ``nbytes``."""
        self._require_context()
        charm = self.rt.machine.charm
        if nbytes:
            self._pe.charge(charm.copy_base + nbytes * charm.copy_per_byte)

    def _require_context(self) -> None:
        cur = self.rt.current_pe
        if cur is None or cur is not self._pe:
            raise ContextError(
                f"{type(self).__name__}{self.thisIndex} used outside its PE context"
            )

    # ------------------------------------------------------------------
    # Collectives
    # ------------------------------------------------------------------

    def contribute(
        self,
        value: Any = None,
        reducer: Optional[str] = None,
        callback: Optional[CkCallback] = None,
        section=None,
    ) -> None:
        """Join the next reduction epoch of this array (or of one of
        its sections, when ``section=`` is given).

        With ``value=None, reducer=None`` this is a pure barrier; the
        callback fires when every member has contributed.  Every
        member must pass the same reducer and an equivalent callback
        within one epoch.
        """
        self._require_context()
        target = self._array if section is None else section
        if section is not None:
            if section.base_array is not self._array:
                raise ContextError(
                    f"{type(self).__name__}{self.thisIndex}: section "
                    "belongs to a different array"
                )
            if not section.contains(self.thisIndex):
                raise ContextError(
                    f"{type(self).__name__}{self.thisIndex} is not a "
                    "member of the section it contributed to"
                )
        seq = self._reduction_seqs.get(target.id, 0)
        self._reduction_seqs[target.id] = seq + 1
        self.rt.reductions.contribute(
            target, self._pe, seq, value, reducer, callback
        )

    # ------------------------------------------------------------------
    # Sharded-engine state reconciliation (see repro.sim.parallel)
    # ------------------------------------------------------------------

    def shard_state(self) -> Optional[dict]:
        """Validation state a worker shard ships home after a sharded
        run (picklable attribute dict), or None when the element holds
        none — the default.  Override in chares whose drivers read
        element state after ``rt.run()``."""
        return None

    def shard_load(self, state: dict) -> None:
        """Install a :meth:`shard_state` payload on the parent's copy."""
        for name, value in state.items():
            setattr(self, name, value)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        idx = getattr(self, "thisIndex", "?")
        return f"<{type(self).__name__}{idx}>"
