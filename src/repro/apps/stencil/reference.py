"""Sequential reference for the Jacobi stencil.

Vectorized 7-point Jacobi sweep over the whole domain with Dirichlet
(zero) boundaries; the parallel implementations must match this
bit-for-bit in validation mode after any number of iterations.
"""

from __future__ import annotations

import numpy as np


def jacobi_step(grid: np.ndarray) -> np.ndarray:
    """One 7-point Jacobi sweep; zero boundary outside the domain.

    ``new[i,j,k] = (c + sum of 6 face neighbours) / 7`` — neighbours
    outside the domain contribute zero.  Fully vectorized: a padded
    copy plus six shifted views (views, not copies, per the HPC
    guidance; the single pad allocation is the only copy).
    """
    padded = np.zeros(tuple(s + 2 for s in grid.shape), dtype=grid.dtype)
    padded[1:-1, 1:-1, 1:-1] = grid
    acc = padded[1:-1, 1:-1, 1:-1].copy()
    acc += padded[:-2, 1:-1, 1:-1]
    acc += padded[2:, 1:-1, 1:-1]
    acc += padded[1:-1, :-2, 1:-1]
    acc += padded[1:-1, 2:, 1:-1]
    acc += padded[1:-1, 1:-1, :-2]
    acc += padded[1:-1, 1:-1, 2:]
    acc /= 7.0
    return acc


def jacobi_reference(grid: np.ndarray, iterations: int) -> np.ndarray:
    """``iterations`` sweeps from an initial grid (input untouched)."""
    g = np.array(grid, dtype=float, copy=True)
    for _ in range(iterations):
        g = jacobi_step(g)
    return g


def initial_grid(domain, seed: int = 1234) -> np.ndarray:
    """Deterministic initial condition shared by tests and examples."""
    rng = np.random.default_rng(seed)
    return rng.random(domain)


def block_update(block_with_ghosts: np.ndarray) -> np.ndarray:
    """One Jacobi sweep of a block given filled ghost layers.

    ``block_with_ghosts`` has shape ``(nx+2, ny+2, nz+2)``; returns the
    new interior of shape ``(nx, ny, nz)``.
    """
    g = block_with_ghosts
    acc = g[1:-1, 1:-1, 1:-1].copy()
    acc += g[:-2, 1:-1, 1:-1]
    acc += g[2:, 1:-1, 1:-1]
    acc += g[1:-1, :-2, 1:-1]
    acc += g[1:-1, 2:, 1:-1]
    acc += g[1:-1, 1:-1, :-2]
    acc += g[1:-1, 1:-1, 2:]
    acc /= 7.0
    return acc
