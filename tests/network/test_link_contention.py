"""Tests for the opt-in per-link torus contention model."""

import pytest

from repro.network import SURVEYOR, make_fabric
from repro.sim import Simulator


def _fab(n_pes=256, link=False):
    sim = Simulator()
    fab = make_fabric(sim, SURVEYOR, n_pes)
    if link:
        fab.enable_link_contention(True)
    return sim, fab


def _pe_at(fab, coords):
    topo = fab.topology
    X, Y, Z = topo.dims
    node = coords[0] + X * (coords[1] + Y * coords[2])
    return node * topo.cores_per_node


def test_route_dimension_order():
    _, fab = _fab(link=True)
    topo = fab.topology
    src = 0
    # +2 in x
    dst = topo.coords(0)
    X, Y, Z = topo.dims
    dst_node = 2 % X
    links = fab.route(0, dst_node)
    assert len(links) == topo.hops(0, dst_node * topo.cores_per_node)
    assert all(axis == 0 for _, axis, _ in links)


def test_route_takes_shorter_way_around():
    _, fab = _fab(link=True)
    topo = fab.topology
    X = topo.dims[0]
    if X < 3:
        pytest.skip("need x-dim >= 3 for wraparound")
    # going to x = X-1 should take one -x hop, not X-1 +x hops
    links = fab.route(0, X - 1)
    assert len(links) == 1
    assert links[0] == (0, 0, -1)


def test_route_length_matches_hops():
    _, fab = _fab(link=True)
    topo = fab.topology
    for dst_node in range(0, topo.n_nodes, 7):
        if dst_node == 0:
            continue
        links = fab.route(0, dst_node)
        assert len(links) == topo.hops(0, dst_node * topo.cores_per_node)


def test_uncontended_latency_matches_node_model():
    """A lone transfer times identically under both contention models."""
    got = {}
    for link in (False, True):
        sim, fab = _fab(link=link)
        topo = fab.topology
        dst = next(
            pe for pe in range(topo.n_pes) if topo.hops(0, pe) >= 2
        )
        out = []
        fab.dcmf_send(0, dst, 10_000, 0.0, lambda: out.append(sim.now))
        sim.run()
        got[link] = out[0]
    assert got[True] == pytest.approx(got[False])


def test_shared_link_serializes():
    """Two flows whose routes share a link serialize; in the node model
    (different source nodes) they would not."""
    sim, fab = _fab(link=True)
    topo = fab.topology
    X = topo.dims[0]
    if X < 4:
        pytest.skip("need x-dim >= 4")
    cpn = topo.cores_per_node
    # flow A: node x=1 -> x=3 crosses link (2, x, +1)
    # flow B: node x=2 -> x=3 crosses the same link
    a_src, a_dst = 1 * cpn, 3 * cpn
    b_src, b_dst = 2 * cpn, 3 * cpn
    nbytes = 100_000
    out = []
    p = SURVEYOR.net
    fab.transfer(a_src, a_dst, nbytes, 0.0, 0.0, p.alpha, p.beta,
                 cb=lambda: out.append(("a", sim.now)))
    fab.transfer(b_src, b_dst, nbytes, 0.0, 0.0, p.alpha, p.beta,
                 cb=lambda: out.append(("b", sim.now)))
    sim.run()
    times = dict(out)
    # b waited a full streaming time behind a on the shared link
    assert times["b"] - times["a"] >= nbytes * p.beta * 0.99


def test_disjoint_paths_do_not_serialize():
    sim, fab = _fab(link=True)
    topo = fab.topology
    Y = topo.dims[1]
    if Y < 2:
        pytest.skip("need y-dim >= 2")
    cpn = topo.cores_per_node
    X = topo.dims[0]
    # flow A along +x at y=0; flow B along +y at x=0: no shared link
    a_src, a_dst = 0, 1 * cpn
    b_src, b_dst = 0 + 0, (X * 1) * cpn  # (0,1,0)
    nbytes = 100_000
    out = []
    p = SURVEYOR.net
    fab.transfer(a_src + 0, a_dst, nbytes, 0.0, 0.0, p.alpha, p.beta,
                 cb=lambda: out.append(sim.now))
    fab.transfer(a_src + 1, b_dst, nbytes, 0.0, 0.0, p.alpha, p.beta,
                 cb=lambda: out.append(sim.now))
    sim.run()
    # both complete at (nearly) the same time: no mutual blocking
    assert abs(out[0] - out[1]) < 1e-9


def test_intra_node_bypasses_links():
    sim, fab = _fab(link=True)
    got = []
    fab.transfer(0, 1, 1000, 0.0, 0.0, SURVEYOR.net.alpha, SURVEYOR.net.beta,
                 cb=lambda: got.append(sim.now))
    sim.run()
    expected = SURVEYOR.net.shm_alpha + 1000 * SURVEYOR.net.shm_beta
    assert got[0] == pytest.approx(expected)
    assert fab.trace.counter("bgp.link_routed") == 0


def test_apps_run_under_link_contention():
    """End-to-end: the stencil completes correctly with per-link
    contention enabled (slower or equal, never wrong)."""
    import numpy as np

    from repro.apps.stencil import gather_grid, jacobi_reference, run_stencil
    from repro.charm import Runtime

    # monkey-wire: run_stencil builds its own runtime, so patch the
    # fabric right after construction via a tiny subclass of the driver
    from repro.apps.stencil.base import IterationMonitor
    from repro.apps.stencil.decomp import choose_grid
    from repro.apps.stencil.jacobi_ckd import JacobiCkd
    from tests.apps.test_stencil_validation import _reference_initial

    domain, n_pes, vr, iters = (8, 8, 8), 4, 2, 2
    grid = choose_grid(domain, n_pes * vr)
    rt = Runtime(SURVEYOR, n_pes)
    rt.fabric.enable_link_contention(True)
    monitor = IterationMonitor(rt, None, iters)
    arr = rt.create_array(
        JacobiCkd, dims=grid,
        ctor_args=(domain, grid, iters, True, 20090922, monitor),
    )
    monitor.proxy = arr.proxy
    arr.proxy.bcast("setup")
    rt.run()
    got = np.zeros(domain)
    bx, by, bz = (d // g for d, g in zip(domain, grid))
    for idx, e in arr.elements.items():
        i, j, k = idx
        got[i*bx:(i+1)*bx, j*by:(j+1)*by, k*bz:(k+1)*bz] = e.interior()
    ref = jacobi_reference(_reference_initial(domain, grid), iters)
    assert np.array_equal(got, ref)
