"""Blocking HTTP client for the serve API (``repro submit``).

Built on :mod:`http.client` so tests and the CLI need no extra
dependencies.  One :class:`ServeClient` per server; each call opens a
fresh connection (the server closes after every response).

Submission is retry-aware: a 429 honors the server's ``Retry-After``
(floored by jittered exponential backoff, capped) for up to
``retries`` attempts before :class:`Backpressure` escapes, and one
transient socket/protocol error is retried once — POSTing the same
specs twice is safe because jobs are digest-coalesced server-side.
"""

from __future__ import annotations

import http.client
import json
import random
import time
from typing import Dict, List, Optional, Sequence, Union

from ..sweep.spec import RunSpec

#: Errors worth exactly one blind resend (server restarting, listen
#: queue hiccup, connection reset mid-response).
_TRANSIENT = (ConnectionError, http.client.HTTPException)


class ServeClientError(RuntimeError):
    """Server answered with an unexpected status; carries the details."""

    def __init__(self, status: int, body: Union[Dict, bytes, None]) -> None:
        super().__init__(f"server returned {status}: {body!r}")
        self.status = status
        self.body = body


class Backpressure(ServeClientError):
    """429 from the server; ``retry_after`` seconds suggested."""

    def __init__(self, body, retry_after: float) -> None:
        super().__init__(429, body)
        self.retry_after = retry_after


class ServeClient:
    """Thin wrapper over the serve HTTP API.

    ``retries`` bounds how many *extra* submit attempts follow a 429
    (total attempts = retries + 1); 0 keeps the old fail-fast
    behavior.  ``rng`` seeds the backoff jitter (tests).
    """

    #: sleep seam (monkeypatchable without freezing real time).
    _sleep = staticmethod(time.sleep)

    def __init__(self, host: str, port: int, timeout: float = 60.0,
                 retries: int = 0, backoff_base: float = 0.1,
                 backoff_cap: float = 30.0,
                 rng: Optional[random.Random] = None) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.rng = rng if rng is not None else random.Random()

    def _backoff(self, attempt: int, retry_after: float) -> float:
        """Seconds to sleep before retry ``attempt`` (1-based): the
        server's hint, floored by exponential backoff, capped, and
        jittered to ±50% so synchronized clients desynchronize."""
        base = max(retry_after, self.backoff_base * 2.0 ** (attempt - 1))
        return min(self.backoff_cap, base) * (0.5 + self.rng.random())

    # -- plumbing -------------------------------------------------------

    def _request(self, method: str, path: str, body: Optional[Dict] = None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            resp = conn.getresponse()
            data = resp.read()
            return resp.status, dict(resp.getheaders()), data
        finally:
            conn.close()

    @staticmethod
    def _json(data: bytes):
        try:
            return json.loads(data)
        except (ValueError, UnicodeDecodeError):
            return None

    # -- API ------------------------------------------------------------

    def submit(self, specs: Union[RunSpec, Dict, Sequence]) -> Dict:
        """Submit one spec or a list; returns the job-status JSON.

        Retries through up to ``self.retries`` 429 responses (sleeping
        per :meth:`_backoff`) and through one transient connection
        error, then raises :class:`Backpressure` on 429 and
        :class:`ServeClientError` on any other non-2xx answer.
        """
        if isinstance(specs, (RunSpec, dict)):
            specs = [specs]
        wire: List[Dict] = [
            s.to_dict() if isinstance(s, RunSpec) else s for s in specs
        ]
        attempt = 0
        transient_used = False
        while True:
            try:
                status, headers, data = self._request(
                    "POST", "/v1/jobs", {"specs": wire}
                )
            except _TRANSIENT:
                if transient_used:
                    raise
                transient_used = True
                self._sleep(self.backoff_base)
                continue
            body = self._json(data)
            if status == 429:
                retry = float(headers.get("Retry-After", 1))
                attempt += 1
                if attempt > self.retries:
                    raise Backpressure(body, retry)
                self._sleep(self._backoff(attempt, retry))
                continue
            if status not in (200, 202):
                raise ServeClientError(status, body if body is not None else data)
            return body

    def status(self, job_id: str) -> Dict:
        status, _h, data = self._request("GET", f"/v1/jobs/{job_id}")
        body = self._json(data)
        if status != 200:
            raise ServeClientError(status, body)
        return body

    def result(self, job_id: str) -> bytes:
        """The job's canonical payload bytes (exactly as cached)."""
        status, _h, data = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status != 200:
            raise ServeClientError(status, self._json(data))
        return data

    def wait(self, job_id: str, deadline_s: float = 300.0, poll_s: float = 0.05) -> Dict:
        """Poll until the job is terminal; returns the final status JSON."""
        t_end = time.monotonic() + deadline_s
        while True:
            body = self.status(job_id)
            if body["status"] in ("done", "failed"):
                return body
            if time.monotonic() >= t_end:
                raise TimeoutError(
                    f"job {job_id} still {body['status']} after {deadline_s:g}s"
                )
            time.sleep(poll_s)

    def stream(self, job_id: str):
        """Yield NDJSON progress dicts until the job is terminal."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request("GET", f"/v1/jobs/{job_id}/stream")
            resp = conn.getresponse()
            if resp.status != 200:
                raise ServeClientError(resp.status, self._json(resp.read()))
            buf = b""
            while True:
                chunk = resp.read1(4096) if hasattr(resp, "read1") else resp.read(4096)
                if not chunk:
                    break
                buf += chunk
                while b"\n" in buf:
                    line, buf = buf.split(b"\n", 1)
                    if line.strip():
                        yield json.loads(line)
        finally:
            conn.close()

    def metrics(self) -> Dict:
        status, _h, data = self._request("GET", "/metrics")
        body = self._json(data)
        if status != 200:
            raise ServeClientError(status, body)
        return body

    def healthy(self) -> bool:
        try:
            status, _h, _d = self._request("GET", "/healthz")
        except OSError:
            return False
        return status == 200
