"""3D Jacobi stencil (paper §4.1, Figure 2): MSG and CKD versions."""

from .base import STENCIL_OOB, IterationMonitor, JacobiBase, block_initial
from .decomp import (
    DIRECTIONS,
    BlockSpec,
    choose_grid,
    factor_triples,
    make_blocks,
    opposite,
)
from .driver import (
    MODES,
    PAPER_DOMAIN,
    PAPER_VR,
    StencilResult,
    gather_grid,
    run_stencil,
    stencil_improvement,
)
from .jacobi_ckd import JacobiCkd
from .jacobi_msg import JacobiMsg
from .reference import block_update, initial_grid, jacobi_reference, jacobi_step

__all__ = [
    "run_stencil",
    "stencil_improvement",
    "gather_grid",
    "StencilResult",
    "JacobiMsg",
    "JacobiCkd",
    "JacobiBase",
    "IterationMonitor",
    "BlockSpec",
    "DIRECTIONS",
    "opposite",
    "choose_grid",
    "factor_triples",
    "make_blocks",
    "block_initial",
    "jacobi_reference",
    "jacobi_step",
    "block_update",
    "initial_grid",
    "STENCIL_OOB",
    "MODES",
    "PAPER_DOMAIN",
    "PAPER_VR",
]
