"""MPI one-sided communication (RMA): windows, puts, and the three
synchronization schemes the paper's related-work section contrasts
with CkDirect (§2.3):

* **fence** — collective over every rank of the window; "overkill" for
  point-to-point completion because all ranks synchronize;
* **post-start-complete-wait (PSCW)** — group-scoped epochs; this is
  what the paper's `MPI_Put` pingpong numbers include;
* **lock-unlock** — passive target, pairwise lock traffic.

Two levels are offered:

* :meth:`Win.put` — the *calibrated* put used by the Table 1/2
  benches: transport plus the flavor's amortized PSCW cost, matching
  how the paper measured MVAPICH-Put / BG-P MPI-Put.
* explicit epochs (:meth:`Win.fence`, :meth:`Win.post` /
  :meth:`Win.start` / :meth:`Win.complete` / :meth:`Win.wait`,
  :meth:`Win.lock` / :meth:`Win.unlock`) around :meth:`Win.put_raw` —
  real control messages through the fabric, used by the
  synchronization-scheme ablation (DESIGN.md A3) and by semantic
  tests.  Their relative costs reproduce the paper's qualitative
  claim: fence scales with the window size, PSCW with the group size,
  lock-unlock adds a lock round trip per epoch.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Set

from .flavors import MPIError
from .sim_mpi import CTRL_BYTES, MPIWorld, Rank


class RMAError(MPIError):
    """RMA misuse: puts outside epochs, mismatched epoch calls."""


class Win:
    """An RMA window spanning every rank of a world."""

    def __init__(self, world: MPIWorld, nbytes_per_rank: int = 0) -> None:
        self.world = world
        self.nbytes = nbytes_per_rank
        p = world.params
        if not p.has_put:
            raise RMAError(f"MPI flavor {p.name!r} exposes no one-sided support")
        # epoch state, per rank
        self._access: Set[int] = set()  # ranks inside start()/lock()
        self._exposure: Set[int] = set()  # ranks inside post()
        self._lock_holder: Dict[int, Optional[int]] = {
            r.rank: None for r in world.ranks
        }
        self._lock_waiters: Dict[int, List] = {r.rank: [] for r in world.ranks}
        self._fence_arrived: Dict[int, int] = {}
        self._fence_cbs: Dict[int, list] = {}
        self._fence_epoch = 0
        # PSCW bookkeeping
        self._posts_seen: Set[int] = set()  # origins whose post arrived
        self._start_waiting: Dict[int, tuple] = {}  # origin -> (rank, cb)
        self._exposure_origins: Dict[int, Set[int]] = {}  # target -> pending origins
        self._wait_waiting: Dict[int, tuple] = {}  # target -> (rank, cb)
        #: projected delivery time of each origin's latest outstanding
        #: put — epoch closes (fence / complete / unlock) must flush.
        self._put_flush: Dict[int, float] = {r.rank: 0.0 for r in world.ranks}

    # ------------------------------------------------------------------
    # Calibrated put (amortized PSCW) — used by the pingpong benches
    # ------------------------------------------------------------------

    def put(self, origin: Rank, target_rank: int, nbytes: int,
            on_complete: Optional[Callable[[], None]] = None) -> None:
        """One-sided put whose cost includes the flavor's amortized
        synchronization, as the paper measured it."""
        world, p = self.world, self.world.params
        target = world.ranks[target_rank]
        sync = p.put_sync_small if nbytes <= p.put_eager_max else p.put_sync_large
        pre = p.sw_send + sync
        done = on_complete if on_complete is not None else (lambda: None)
        start = origin.cursor
        world.trace.count("mpi.puts")
        if world._is_bgp():
            world.fabric.dcmf_send(origin.pe, target.pe, nbytes, start + pre,
                                   done, info_qwords=2)
            return
        if nbytes <= p.put_eager_max:
            beta = p.regimes[0][2]
        else:
            beta = p.regimes[-1][2]
        world.fabric.transfer(
            origin.pe, target.pe, nbytes, start,
            pre=pre, alpha=world.machine.net.alpha, beta=beta, cb=done,
        )

    # ------------------------------------------------------------------
    # Raw put (inside an explicit epoch)
    # ------------------------------------------------------------------

    def put_raw(self, origin: Rank, target_rank: int, nbytes: int,
                on_complete: Optional[Callable[[], None]] = None) -> None:
        """A bare RDMA put: the window is pre-registered, so only the
        wire moves.  Legal only inside an access epoch on ``origin``."""
        world, p = self.world, self.world.params
        if origin.rank not in self._access:
            raise RMAError(
                f"put_raw from rank {origin.rank} outside an access epoch "
                "(call start()/lock() first)"
            )
        target = world.ranks[target_rank]
        done = on_complete if on_complete is not None else (lambda: None)
        world.trace.count("mpi.puts_raw")
        if world._is_bgp():
            delivery = world.fabric.dcmf_send(
                origin.pe, target.pe, nbytes,
                origin.cursor + p.sw_send, done, info_qwords=2,
            )
        else:
            delivery = world.fabric.transfer(
                origin.pe, target.pe, nbytes, origin.cursor,
                pre=p.sw_send, alpha=world.machine.net.alpha,
                beta=p.regimes[-1][2], cb=done,
            )
        self._put_flush[origin.rank] = max(self._put_flush[origin.rank], delivery)

    def _flush_time(self, origin_rank: int) -> float:
        """When the origin's outstanding puts are all delivered."""
        return self._put_flush.get(origin_rank, 0.0)

    # ------------------------------------------------------------------
    # Control messages
    # ------------------------------------------------------------------

    def _ctrl(self, src: Rank, dst: Rank, cb: Callable[[], None],
              start: Optional[float] = None) -> None:
        world, p = self.world, self.world.params
        t0 = (start if start is not None else src.cursor) + p.sw_send
        if world._is_bgp():
            world.fabric.dcmf_send(src.pe, dst.pe, CTRL_BYTES, t0, cb)
        else:
            world.fabric.transfer(
                src.pe, dst.pe, CTRL_BYTES, t0,
                pre=0.0, alpha=world.machine.net.alpha,
                beta=p.regimes[0][2], cb=cb,
            )

    # ------------------------------------------------------------------
    # Fence synchronization (collective)
    # ------------------------------------------------------------------

    def fence(self, rank: Rank, cb: Callable[[], None]) -> None:
        """Collective fence: completes on ``rank`` once every rank of
        the window has entered it (dissemination-barrier cost:
        ``ceil(log2 n)`` control-message rounds)."""
        epoch = self._fence_epoch
        self._fence_arrived.setdefault(epoch, 0)
        self._fence_cbs.setdefault(epoch, [])
        self._fence_arrived[epoch] += 1
        self._fence_cbs[epoch].append((rank, cb, rank.cursor))
        self.world.trace.count("mpi.fences")
        if self._fence_arrived[epoch] < self.world.n_ranks:
            return
        # Everyone arrived: charge the dissemination rounds and release.
        self._fence_epoch += 1
        entries = self._fence_cbs.pop(epoch)
        del self._fence_arrived[epoch]
        latest = max(t for _, _, t in entries)
        # A fence completes outstanding RMA: flush everyone's puts.
        latest = max([latest] + [self._flush_time(r.rank) for r in self.world.ranks])
        rounds = max(1, math.ceil(math.log2(max(2, self.world.n_ranks))))
        p = self.world.params
        net = self.world.machine.net
        round_cost = p.sw_send + net.alpha + CTRL_BYTES * net.beta + p.sw_recv
        release = latest + rounds * round_cost
        for r, fn, _ in entries:
            r.exec_at(release, fn)
        # access is implicitly granted between fences
        self._access.update(r.rank for r in self.world.ranks)
        self._exposure.update(r.rank for r in self.world.ranks)

    # ------------------------------------------------------------------
    # Post-Start-Complete-Wait
    # ------------------------------------------------------------------

    def post(self, target: Rank, origin_ranks: Sequence[int],
             cb: Optional[Callable[[], None]] = None) -> None:
        """Exposure epoch opens: notify each origin it may start."""
        if target.rank in self._exposure_origins:
            raise RMAError(f"rank {target.rank} posted twice without wait()")
        self._exposure.add(target.rank)
        self._exposure_origins[target.rank] = set(origin_ranks)
        self.world.trace.count("mpi.pscw_posts")
        for o in origin_ranks:
            origin = self.world.ranks[o]
            self._ctrl(target, origin, lambda o=o: self._post_arrived(o))
        if cb is not None:
            cb()

    def _post_arrived(self, origin_rank: int) -> None:
        self._posts_seen.add(origin_rank)
        pending = self._start_waiting.pop(origin_rank, None)
        if pending is not None:
            rank, cb = pending
            self._posts_seen.discard(origin_rank)
            self._access.add(origin_rank)
            rank.exec_at(self.world.sim.now, cb)

    def start(self, origin: Rank, cb: Callable[[], None]) -> None:
        """Access epoch opens once the target's post notification has
        arrived (blocking start, delivered as a callback)."""
        self.world.trace.count("mpi.pscw_starts")
        if origin.rank in self._posts_seen:
            self._posts_seen.discard(origin.rank)
            self._access.add(origin.rank)
            origin.exec_at(origin.cursor, cb)
            return
        self._start_waiting[origin.rank] = (origin, cb)

    def complete(self, origin: Rank, target_rank: int,
                 cb: Optional[Callable[[], None]] = None) -> None:
        """Access epoch closes: notify the target all puts were issued."""
        if origin.rank not in self._access:
            raise RMAError(f"complete() on rank {origin.rank} without start()")
        self._access.discard(origin.rank)
        self.world.trace.count("mpi.pscw_completes")
        target = self.world.ranks[target_rank]
        # complete() must flush this origin's outstanding puts first
        flush = max(origin.cursor, self._flush_time(origin.rank))
        self._ctrl(origin, target,
                   lambda: self._complete_arrived(target_rank, origin.rank),
                   start=flush)
        if cb is not None:
            cb()

    def _complete_arrived(self, target_rank: int, origin_rank: int) -> None:
        pending_origins = self._exposure_origins.get(target_rank)
        if pending_origins is None or origin_rank not in pending_origins:
            raise RMAError(
                f"complete from rank {origin_rank} for an exposure epoch "
                f"rank {target_rank} never posted for it"
            )
        pending_origins.discard(origin_rank)
        if pending_origins:
            return
        waiting = self._wait_waiting.pop(target_rank, None)
        if waiting is not None:
            rank, cb = waiting
            del self._exposure_origins[target_rank]
            self._exposure.discard(target_rank)
            rank.exec_at(self.world.sim.now, cb)
        # else: wait() will observe the empty set when called.

    def wait(self, target: Rank, cb: Callable[[], None]) -> None:
        """Exposure epoch closes once every origin completed."""
        self.world.trace.count("mpi.pscw_waits")
        pending_origins = self._exposure_origins.get(target.rank)
        if pending_origins is None:
            raise RMAError(f"wait() on rank {target.rank} without post()")
        if not pending_origins:
            del self._exposure_origins[target.rank]
            self._exposure.discard(target.rank)
            target.exec_at(target.cursor, cb)
            return
        self._wait_waiting[target.rank] = (target, cb)

    # ------------------------------------------------------------------
    # Lock / unlock (passive target)
    # ------------------------------------------------------------------

    def lock(self, origin: Rank, target_rank: int, cb: Callable[[], None]) -> None:
        """Acquire the target's window lock: request + grant round trip
        (queued FIFO when contended)."""
        self.world.trace.count("mpi.locks")
        target = self.world.ranks[target_rank]

        def request_arrived() -> None:
            if self._lock_holder[target_rank] is None:
                self._lock_holder[target_rank] = origin.rank
                self._ctrl(target, origin, grant, start=self.world.sim.now)
            else:
                self._lock_waiters[target_rank].append((origin, grant_later))

        def grant() -> None:
            self._access.add(origin.rank)
            origin.exec_at(self.world.sim.now, cb)

        def grant_later() -> None:
            self._ctrl(target, origin, grant, start=self.world.sim.now)

        self._ctrl(origin, target, request_arrived)

    def unlock(self, origin: Rank, target_rank: int, cb: Callable[[], None]) -> None:
        """Release: flush acknowledgement round trip, then hand the
        lock to the next waiter."""
        if self._lock_holder[target_rank] != origin.rank:
            raise RMAError(
                f"rank {origin.rank} unlocking window it does not hold "
                f"(holder: {self._lock_holder[target_rank]})"
            )
        self.world.trace.count("mpi.unlocks")
        target = self.world.ranks[target_rank]
        flush = max(origin.cursor, self._flush_time(origin.rank))

        def release_arrived() -> None:
            self._lock_holder[target_rank] = None
            self._access.discard(origin.rank)
            if self._lock_waiters[target_rank]:
                waiter, grant_fn = self._lock_waiters[target_rank].pop(0)
                self._lock_holder[target_rank] = waiter.rank
                grant_fn()
            self._ctrl(target, origin, ack, start=self.world.sim.now)

        def ack() -> None:
            origin.exec_at(self.world.sim.now, cb)

        self._ctrl(origin, target, release_arrived, start=flush)
