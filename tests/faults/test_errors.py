"""Typed-error tests: put validation and the use-before-ready race."""

import numpy as np
import pytest

from repro import ABE, Buffer, Runtime
from repro import ckdirect as ckd
from repro.charm.errors import (
    ChannelStateError,
    CkDirectError,
    PutMismatchError,
    PutRaceError,
)
from repro.ckdirect.handle import ChannelState

from tests.ckdirect.channel_helpers import CROSS, Endpoint


def _pair():
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    return rt, arr, arr.element(0), arr.element(1)


# ---------------------------------------------------------------------------
# assoc_local validation (PutMismatchError)
# ---------------------------------------------------------------------------


def test_assoc_rejects_size_mismatch():
    rt, arr, recv, send = _pair()
    handle = recv.make_handle()
    small = Buffer(array=np.zeros(4))
    with pytest.raises(PutMismatchError, match="32B"):
        ckd.assoc_local(send, handle, small)
    # the failed assoc must not half-wire the channel
    assert handle.src_pe is None and handle.src_buffer is None


def test_assoc_rejects_dtype_mismatch():
    rt, arr, recv, send = _pair()
    handle = recv.make_handle()  # 8 x float64 = 64B
    same_bytes = Buffer(array=np.ones(16, dtype=np.float32))  # 64B too
    with pytest.raises(PutMismatchError, match="dtype"):
        ckd.assoc_local(send, handle, same_bytes)


def test_assoc_twice_is_a_state_error():
    rt, arr, recv, send = _pair()
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    with pytest.raises(ChannelStateError, match="twice"):
        ckd.assoc_local(send, handle, send.send_buf)


def test_put_before_assoc():
    rt, arr, recv, send = _pair()
    handle = recv.make_handle()
    with pytest.raises(CkDirectError, match="before assoc_local"):
        arr.proxy[1].do_put(handle)
        rt.run()


# ---------------------------------------------------------------------------
# The use-before-ready race (PutRaceError)
# ---------------------------------------------------------------------------


def _consumed_channel():
    """Drive one full phase so the receiver owns the buffer again:
    put -> delivered -> callback fired -> CONSUMED, no ready_mark yet."""
    rt, arr, recv, send = _pair()
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    arr.proxy[1].do_put(handle)
    rt.run()
    assert handle.state is ChannelState.CONSUMED
    assert not handle.sentinel_armed
    return rt, arr, recv, send, handle


def test_overlapping_phases_race_is_detected():
    """Two overlapping phases: the receiver consumed phase 1's data but
    has not re-armed (``ready_mark``) when phase 2's put lands.

    The state machine blocks the *issue* on this simulator, but real
    RDMA has no such guard — a write posted by a racing sender lands
    regardless.  Emulate that errant landing by driving the delivery
    path directly: with RACE_CHECK on (the default) it must raise
    instead of silently overwriting data the receiver still owns.
    """
    rt, arr, recv, send, handle = _consumed_channel()
    # Phase 2 on the sender, before the receiver re-armed: the strict
    # state machine already refuses to issue ...
    with pytest.raises(ChannelStateError, match="consumed"):
        arr.proxy[1].do_put(handle)
        rt.run()
    # ... and the landing itself (the errant RDMA write) is caught too.
    send.send_arr[:] = 2.0
    with pytest.raises(PutRaceError, match="race"):
        handle.deliver()
    # the racing payload must not have landed
    assert not np.array_equal(recv.recv_arr, send.send_arr)


def test_race_check_off_models_the_silent_hardware_overwrite(monkeypatch):
    """With RACE_CHECK flipped off the landing silently clobbers the
    receiver-owned buffer — the behaviour of the real hardware the
    debug check exists to catch."""
    rt, arr, recv, send, handle = _consumed_channel()
    monkeypatch.setattr("repro.ckdirect.handle.RACE_CHECK", False)
    send.send_arr[:] = 2.0
    handle.deliver()  # no exception: data the receiver owns is gone
    assert np.all(recv.recv_arr == 2.0)
    assert handle.state is ChannelState.DELIVERED


def test_race_check_is_on_by_default():
    from repro.ckdirect import handle as handle_mod

    assert handle_mod.RACE_CHECK is True
