"""End-to-end tracing over the real apps: the acceptance-level checks.

Runs the pingpong variants under an installed tracer and asserts the
timeline has the shape the exporter and analyses rely on: the expected
event kinds per stack, flat (non-overlapping) per-PE span tracks, and
causal chains that link completions back to the operations that caused
them.
"""

import pytest

from repro.apps.pingpong import charm_pingpong, ckdirect_pingpong, mpi_pingpong
from repro.charm.runtime import Runtime
from repro.network.params import ABE, SURVEYOR
from repro.projections.analysis import spans_by_track
from repro.projections.events import CAT_IDLE
from repro.projections.eventlog import EventLog, tracing


def _trace(fn, machine, nbytes=2000, iterations=10) -> EventLog:
    with tracing() as log:
        fn(machine, nbytes, iterations)
    return log


def _assert_flat_tracks(log: EventLog) -> None:
    for (run, pe), spans in spans_by_track(log).items():
        for a, b in zip(spans, spans[1:]):
            assert a.t1 <= b.t0 + 1e-12, (
                f"overlap on run{run}/pe{pe}: {a} vs {b}"
            )


def test_ckdirect_infiniband_timeline():
    log = _trace(ckdirect_pingpong, ABE)
    _assert_flat_tracks(log)
    names = {ev.name_key for ev in log.events}
    assert {"put", "put_complete", "poll_sweep", "poll_callback"} <= names
    # every poll_callback is caused by the put_complete of its channel
    index = log.by_eid()
    callbacks = list(log.select(name_key="poll_callback"))
    assert callbacks
    for cb in callbacks:
        assert cb.cause is not None
        assert index[cb.cause].name_key == "put_complete"


def test_ckdirect_put_chain_reaches_issuer():
    log = _trace(ckdirect_pingpong, ABE)
    index = log.by_eid()
    complete = next(log.select(name_key="put_complete"))
    put = index[complete.cause]
    assert put.name_key == "put"
    # the put was issued inside a traced handler on the sending PE
    assert put.cause is not None


def test_ckdirect_bgp_uses_direct_callbacks():
    log = _trace(ckdirect_pingpong, SURVEYOR)
    _assert_flat_tracks(log)
    names = {ev.name_key for ev in log.events}
    assert "direct_callback" in names
    assert "poll_callback" not in names  # BG/P bypasses the polling queue
    index = log.by_eid()
    for cb in log.select(name_key="direct_callback"):
        assert index[cb.cause].name_key == "put_complete"


def test_charm_message_chain():
    log = _trace(charm_pingpong, ABE)
    _assert_flat_tracks(log)
    index = log.by_eid()
    # send -> enqueue -> dispatch -> entry, each a causal hop
    entry = next(log.select(category="entry", name_key="pong"))
    dispatch = index[entry.cause]
    assert dispatch.name_key == "dispatch"
    enqueue = index[dispatch.cause]
    assert enqueue.name_key == "enqueue"
    send = index[enqueue.cause]
    assert send.name_key == "send"


def test_mpi_recv_caused_by_send():
    log = _trace(mpi_pingpong, ABE)
    _assert_flat_tracks(log)
    index = log.by_eid()
    recvs = list(log.select(name_key="mpi_recv"))
    assert recvs
    for recv in recvs:
        assert index[recv.cause].name_key == "mpi_send"


def test_idle_gaps_recorded():
    log = _trace(ckdirect_pingpong, ABE)
    assert any(ev.category == CAT_IDLE for ev in log.events)


def test_explicit_tracer_argument():
    log = EventLog()
    rt = Runtime(ABE, 2, tracer=log)
    assert rt.tracer is log
    assert log.runs and log.runs[0][1] is rt


def test_one_run_registered_per_runtime():
    with tracing() as log:
        ckdirect_pingpong(ABE, 1000, iterations=2)
        charm_pingpong(ABE, 1000, iterations=2)
    labels = [label for label, _o, _n in log.runs]
    assert len(labels) == 2
    assert all(label.startswith("charm:") for label in labels)
    runs_with_events = {ev.run for ev in log.events}
    assert runs_with_events == {0, 1}


def test_disabled_tracing_records_nothing():
    log = EventLog()
    # no tracer installed: runtimes run untraced
    rt = Runtime(ABE, 2)
    assert rt.tracer is None
    assert rt.fabric.tracer is None
    ckdirect_pingpong(ABE, 1000, iterations=5)
    assert len(log) == 0


def test_timeline_counts_match_trace_counters():
    """The two instrumentation layers agree exactly on pingpong."""
    with tracing() as log:
        ckdirect_pingpong(ABE, 2000, iterations=10)
    rt = log.runs[0][1]  # the registered owner is the Runtime
    tr = rt.trace
    n_puts = sum(1 for _ in log.select(name_key="put"))
    n_sweeps = sum(1 for _ in log.select(name_key="poll_sweep"))
    assert n_puts == tr.counter("ckdirect.puts")
    assert n_sweeps == tr.counter("pe.poll_sweeps")
