"""MPI flavor selection and transport-regime helpers.

The paper benchmarks CkDirect against four MPI stacks: MPICH-VMI and
MVAPICH2 (two-sided and ``MPI_Put``) on Infiniband, and the IBM MPI
(two-sided and ``MPI_Put``) on Blue Gene/P.  Each stack's constants
live in :class:`repro.network.params.MPIFlavorParams`; this module
resolves a flavor by name for a machine and answers which transport
regime (eager / mid / rendezvous) a message falls into.
"""

from __future__ import annotations

from typing import Tuple

from ..network.params import MachineParams, MPIFlavorParams


class MPIError(RuntimeError):
    """Raised for MPI-layer misuse."""


def resolve_flavor(machine: MachineParams, flavor: str | None = None) -> MPIFlavorParams:
    """Look up a flavor by name (default: the machine's default MPI)."""
    name = flavor or machine.default_mpi
    try:
        return machine.mpi_flavors[name]
    except KeyError:
        raise MPIError(
            f"machine {machine.name!r} has no MPI flavor {name!r}; "
            f"available: {sorted(machine.mpi_flavors)}"
        ) from None


def regime_for(params: MPIFlavorParams, nbytes: int) -> Tuple[int, float, float, bool]:
    """The transport regime covering ``nbytes``.

    Returns ``(index, fixed_extra, beta, is_last)``; the rendezvous
    bookkeeping (``rndv_fixed`` + registration) applies only in the
    last regime.
    """
    regs = params.regimes
    for i, (bound, fixed, beta) in enumerate(regs):
        if nbytes <= bound:
            return i, fixed, beta, i == len(regs) - 1
    # regimes always end with an effectively unbounded row; falling
    # through means the table was malformed.
    raise MPIError(f"{params.name}: no regime covers {nbytes} bytes")


def uses_rendezvous(params: MPIFlavorParams, nbytes: int) -> bool:
    """True when ``nbytes`` travels via the rendezvous protocol."""
    if params.rndv_fixed <= 0 and params.reg_base <= 0:
        return False
    _, _, _, is_last = regime_for(params, nbytes)
    return is_last and len(params.regimes) > 1
