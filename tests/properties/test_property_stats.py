"""Property test: RunningStats.merge equals single-pass accumulation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.trace import RunningStats

_floats = st.floats(min_value=-1e9, max_value=1e9,
                    allow_nan=False, allow_infinity=False)


def _fill(values):
    st_ = RunningStats()
    for v in values:
        st_.add(v)
    return st_


@given(st.lists(_floats), st.lists(_floats))
def test_merge_matches_single_pass(xs, ys):
    left = _fill(xs)
    left.merge(_fill(ys))
    combined = _fill(xs + ys)

    assert left.n == combined.n
    assert left.total == pytest.approx(combined.total, rel=1e-9, abs=1e-6)
    assert left.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)
    assert left.variance == pytest.approx(combined.variance, rel=1e-6, abs=1e-3)
    if xs or ys:
        assert left.min == combined.min
        assert left.max == combined.max
    else:
        assert math.isinf(left.min) and math.isinf(left.max)


@given(st.lists(st.lists(_floats), max_size=6))
def test_merge_is_order_insensitive_in_n_and_total(chunks):
    merged = RunningStats()
    for chunk in chunks:
        merged.merge(_fill(chunk))
    flat = [v for chunk in chunks for v in chunk]
    combined = _fill(flat)
    assert merged.n == combined.n
    assert merged.total == pytest.approx(combined.total, rel=1e-9, abs=1e-6)
    assert merged.mean == pytest.approx(combined.mean, rel=1e-9, abs=1e-6)


@given(st.lists(_floats, min_size=1))
def test_merge_into_empty_copies(xs):
    src = _fill(xs)
    dst = RunningStats()
    dst.merge(src)
    assert dst.n == src.n
    assert dst.mean == src.mean
    assert dst.variance == src.variance
    assert dst.min == src.min and dst.max == src.max


def test_merge_empty_is_noop():
    st_ = _fill([1.0, 2.0])
    st_.merge(RunningStats())
    assert st_.n == 2 and st_.mean == pytest.approx(1.5)
