"""End-to-end integration tests crossing every layer at once."""

import numpy as np
import pytest

from repro import ABE, SURVEYOR
from repro.apps.matmul import gather_c, reference_c, run_matmul
from repro.apps.openatom import abe_2cpn, run_openatom
from repro.apps.pingpong import charm_pingpong, ckdirect_pingpong
from repro.apps.stencil import gather_grid, jacobi_reference, run_stencil
from tests.apps.test_stencil_validation import _reference_initial


@pytest.mark.parametrize("machine", [ABE, SURVEYOR], ids=["ib", "bgp"])
def test_full_stack_stencil_speedup_and_correctness(machine):
    """One configuration, both versions: identical numerics, CkDirect
    faster — the paper's whole claim in one test."""
    dom = (16, 16, 8)
    msg = run_stencil(machine, 8, dom, vr=2, iterations=3, mode="msg",
                      validate=True, keep_runtime=True)
    ckd = run_stencil(machine, 8, dom, vr=2, iterations=3, mode="ckd",
                      validate=True, keep_runtime=True)
    ref = jacobi_reference(_reference_initial(dom, msg.grid), 3)
    assert np.array_equal(gather_grid(msg), ref)
    assert np.array_equal(gather_grid(ckd), ref)
    assert ckd.mean_iter_time <= msg.mean_iter_time


def test_full_stack_matmul(ib_only=True):
    msg = run_matmul(ABE, 8, N=64, c=4, iterations=2, mode="msg",
                     validate=True, keep_runtime=True)
    ckd = run_matmul(ABE, 8, N=64, c=4, iterations=2, mode="ckd",
                     validate=True, keep_runtime=True)
    ref = reference_c(msg)
    assert np.allclose(gather_c(msg), ref)
    assert np.allclose(gather_c(ckd), ref)
    assert ckd.mean_iter_time < msg.mean_iter_time


def test_openatom_ckd_beats_msg_when_tuned():
    kw = dict(nstates=32, nplanes=4, grain=8, points_per_plane=1024,
              iterations=2)
    m = run_openatom(abe_2cpn(ABE), 16, mode="msg", **kw)
    c = run_openatom(abe_2cpn(ABE), 16, mode="ckd", polling="phased", **kw)
    assert c.mean_step_time < m.mean_step_time


def test_pingpong_consistency_across_runs():
    a = ckdirect_pingpong(ABE, 5000, 30).rtt
    b = ckdirect_pingpong(ABE, 5000, 30).rtt
    assert a == b


def test_trace_counters_consistent():
    r = run_stencil(ABE, 4, (8, 8, 8), vr=2, iterations=2, mode="ckd",
                    keep_runtime=True)
    t = r.runtime.trace
    # every put was detected exactly once
    assert t.counter("ckdirect.puts") == t.counter(
        "pe.poll_detections"
    ) + t.counter("pe.direct_completions")
    # every sent message was executed
    assert t.counter("charm.msgs_sent") == t.counter("pe.messages_executed")


def test_no_pending_events_after_run():
    r = run_stencil(ABE, 4, (8, 8, 8), vr=2, iterations=2, mode="msg",
                    keep_runtime=True)
    sim = r.runtime.sim
    # pending_active counts live (non-cancelled) queued events and is
    # implementation-agnostic — valid for heap, calendar and compiled.
    assert sim.pending_active == 0
