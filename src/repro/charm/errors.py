"""Runtime error types."""

from __future__ import annotations


class CharmError(RuntimeError):
    """Base class for runtime misuse and internal errors."""


class EntryMethodError(CharmError):
    """Raised when an entry-method invocation cannot be completed
    (unknown method, exception inside user code is re-raised as-is)."""


class MappingError(CharmError):
    """Raised for invalid chare-to-PE mappings."""


class ReductionError(CharmError):
    """Raised for reduction misuse (mismatched reducers, double
    contribution in one reduction epoch, unknown reducer name)."""


class ContextError(CharmError):
    """Raised when an operation requiring a PE execution context is
    attempted from host code (or vice versa)."""


class CkDirectError(CharmError):
    """Base class for CkDirect misuse (channel API contract violations)."""


class ChannelStateError(CkDirectError):
    """An operation was attempted in a channel state that forbids it
    (e.g. ``ready_poll_q`` before ``ready_mark``, a second put while
    one is already in flight)."""


class SentinelError(CkDirectError):
    """The out-of-band contract was violated (payload contains the
    out-of-band value in its final double word)."""


class PutMismatchError(CkDirectError):
    """The sender-side buffer associated with a channel does not match
    the registered receive buffer (size, dtype, or element count), so a
    put could never land correctly.  Raised at ``assoc_local`` time —
    the earliest point both endpoints are known — instead of surfacing
    as a numpy copy/broadcast failure at delivery time."""


class PutRaceError(CkDirectError):
    """A put landed in a buffer whose sentinel was consumed but not yet
    re-marked (``ready_mark``): the receiver still owns the buffer and
    the application-level synchronization the paper relies on (§4.1)
    has been violated.  Raised by the debug-mode use-before-ready
    check (see :data:`repro.ckdirect.api.RACE_CHECK`)."""
