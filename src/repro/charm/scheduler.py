"""Scheduler queue and direct-delivery items.

The message-driven scheduler on each PE owns a FIFO
:class:`SchedulerQueue`.  Queue occupancy is tracked because it is a
first-order effect in the paper: finer-grained decompositions put more
messages in flight, raising queue occupancy and hence total scheduling
overhead — the overhead CkDirect bypasses.

:class:`DirectItem` models work delivered *around* the scheduler
queue: on Blue Gene/P the DCMF receive-completion callback invokes the
CkDirect user callback directly, paying the low-level handler cost but
no scheduling cost.

:class:`PollWatchdog` is the reliability layer's last line of defence:
a periodic simulated-time scan over puts that were issued but never
resolved — the handles whose sentinel never flips.  It exists only on
runtimes built with a fault plan; a clean runtime never constructs one.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque

from .message import Message

if TYPE_CHECKING:  # pragma: no cover
    from ..faults.plan import ReliabilityParams
    from .runtime import Runtime


class SchedulerQueue:
    """FIFO of pending messages with occupancy statistics."""

    __slots__ = ("_q", "enqueued", "max_occupancy", "occupancy_sum", "dequeues")

    def __init__(self) -> None:
        self._q: Deque[Message] = deque()
        self.enqueued = 0
        self.dequeues = 0
        self.max_occupancy = 0
        self.occupancy_sum = 0  # summed at dequeue: mean = sum/dequeues

    def push(self, msg: Message) -> None:
        """Append a message (FIFO) and update occupancy stats."""
        self._q.append(msg)
        self.enqueued += 1
        if len(self._q) > self.max_occupancy:
            self.max_occupancy = len(self._q)

    def pop(self) -> Message:
        """Remove and return the oldest message."""
        self.occupancy_sum += len(self._q)
        self.dequeues += 1
        return self._q.popleft()

    def __len__(self) -> int:
        return len(self._q)

    def __bool__(self) -> bool:
        return bool(self._q)

    @property
    def mean_occupancy(self) -> float:
        """Mean queue depth observed at dequeue times."""
        return self.occupancy_sum / self.dequeues if self.dequeues else 0.0

    # Time Warp checkpoint/restore (see repro.sim.timewarp).  Queued
    # Message objects are captured by reference: their mutable fields
    # (trace_eid) are trace-only and excluded from result identity.

    def tw_checkpoint(self) -> tuple:
        return (
            list(self._q),
            self.enqueued,
            self.dequeues,
            self.max_occupancy,
            self.occupancy_sum,
        )

    def tw_restore(self, snap: tuple) -> None:
        q, self.enqueued, self.dequeues, self.max_occupancy, self.occupancy_sum = snap
        self._q.clear()
        self._q.extend(q)


class DirectItem:
    """A completion delivered around the scheduler (BG/P CkDirect path).

    ``cost`` is charged on the PE before ``fn`` runs; ``fn`` executes
    in the PE's context and may itself charge further time or send.
    """

    __slots__ = ("cost", "fn", "trace_eid")

    def __init__(self, cost: float, fn: Callable[[], None]) -> None:
        self.cost = cost
        self.fn = fn
        #: causing timeline event (the put-completion instant) — None untraced.
        self.trace_eid = None


class PollWatchdog:
    """Detects reliable puts whose completion never became observable.

    Scans ``rt._reliable_inflight`` every ``watchdog_period`` of
    simulated time.  Three situations, three remedies:

    * **delivered but unacked** — the receiver finished (its
      ``last_delivered_seq`` caught up) yet the sender's ack was lost:
      re-send the ack.  Retried every tick until one lands, so lost
      acks can never wedge the sender's bookkeeping.
    * **torn landing** — the payload is present but the sentinel word
      never flipped, so the poll sweep is blind to it: repair locally
      (:meth:`CkDirectHandle.recover_torn`).  Fires at most once per
      (handle, put) — the once-per-stall guarantee the tests pin down.
    * **nothing landed** — the delivery was lost or is extremely late:
      pull the sender's pending retransmit timeout forward instead of
      waiting out a long exponential backoff.  Also once per put.

    The tick only re-schedules itself while unresolved puts exist —
    message-driven programs terminate by the event heap falling silent,
    and a free-running periodic event would keep the simulation alive
    forever.
    """

    def __init__(self, rt: "Runtime", params: "ReliabilityParams") -> None:
        self.rt = rt
        self.params = params
        self.fires = 0  # stall escalations (not ack re-sends)
        self._scheduled = False

    def arm(self) -> None:
        """Ensure a tick is pending (called whenever a put goes in flight)."""
        if not self._scheduled:
            self._scheduled = True
            self.rt.sim.schedule(self.params.watchdog_period, self._tick)

    def _tick(self) -> None:
        self._scheduled = False
        rt = self.rt
        inflight = rt._reliable_inflight
        if not inflight:
            return
        from ..ckdirect import api as ckapi  # circular at import time

        now = rt.sim.now
        timeout = self.params.watchdog_timeout
        for handle in list(inflight.values()):
            seq = handle.put_seq
            if handle.last_delivered_seq >= seq:
                # Receiver-side done; only the ack went missing.
                rt.trace.count("ckdirect.ack_resends")
                ckapi._send_ack(handle, seq)
                continue
            if now - handle.put_issue_time < timeout:
                continue
            if handle.watchdog_fired_seq >= seq:
                continue  # already escalated this put once
            handle.watchdog_fired_seq = seq
            self.fires += 1
            ckapi._watchdog_recover(handle, seq)
        if rt._reliable_inflight:
            self.arm()
