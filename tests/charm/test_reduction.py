"""Unit tests for reductions and barriers over chare arrays."""

import numpy as np
import pytest

from repro import ABE, Chare, CkCallback, Runtime
from repro.charm import CustomMap, ReductionError


class Contributor(Chare):
    def __init__(self):
        self.results = []

    def go_sum(self, cb):
        self.contribute(float(self.index1d + 1), "sum", cb)

    def go_barrier(self, cb):
        self.contribute(callback=cb)

    def go_max(self, cb):
        self.contribute(float(self.index1d), "max", cb)

    def go_vector(self, cb):
        self.contribute(np.full(3, float(self.index1d)), "sum", cb)

    def catch(self, value):
        self.results.append(value)

    def go_bad_reducer(self, cb):
        self.contribute(1.0, "bogus", cb)

    def go_barrier_with_value(self, cb):
        self.contribute(1.0, None, cb)


def _run(n_elems=8, n_pes=4, method="go_sum", dims=None):
    rt = Runtime(ABE, n_pes=n_pes)
    arr = rt.create_array(Contributor, dims=dims or (n_elems,))
    results = []
    cb = CkCallback.host(results.append)
    arr.proxy.bcast(method, cb)
    rt.run()
    return rt, arr, results


def test_sum_reduction():
    _, _, results = _run(method="go_sum")
    assert results == [sum(range(1, 9))]


def test_max_reduction():
    _, _, results = _run(method="go_max")
    assert results == [7.0]


def test_vector_sum_reduction():
    _, _, results = _run(method="go_vector")
    assert np.array_equal(results[0], np.full(3, sum(range(8))))


def test_barrier_reduces_none():
    _, _, results = _run(method="go_barrier")
    assert results == [None]


def test_barrier_fires_once_per_epoch():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Contributor, dims=(8,))
    results = []
    cb = CkCallback.host(lambda v: results.append(rt.now))
    arr.proxy.bcast("go_barrier", cb)
    rt.run()
    arr.proxy.bcast("go_barrier", cb)
    rt.run()
    assert len(results) == 2
    assert results[1] > results[0]


def test_barrier_completes_only_after_all_contribute():
    """A straggler must hold the barrier open."""

    class Straggler(Chare):
        def go(self, cb):
            if self.index1d == 3:
                self.charge(5e-3)  # long compute before contributing
            self.contribute(callback=cb)

    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Straggler, dims=(4,))
    t = []
    arr.proxy.bcast("go", CkCallback.host(lambda v: t.append(rt.now)))
    rt.run()
    assert t[0] >= 5e-3


def test_reduction_to_element_callback():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Contributor, dims=(8,))
    cb = CkCallback.send(arr, (0,), "catch")
    arr.proxy.bcast("go_sum", cb)
    rt.run()
    assert arr.element(0).results == [36.0]


def test_reduction_bcast_callback_reaches_everyone():
    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(Contributor, dims=(8,))
    cb = CkCallback.bcast(arr, "catch")
    arr.proxy.bcast("go_sum", cb)
    rt.run()
    for e in arr.elements.values():
        assert e.results == [36.0]


def test_unknown_reducer_raises():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Contributor, dims=(2,))
    arr.proxy.bcast("go_bad_reducer", CkCallback.ignore())
    with pytest.raises(ReductionError):
        rt.run()


def test_barrier_with_value_raises():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(Contributor, dims=(2,))
    arr.proxy.bcast("go_barrier_with_value", CkCallback.ignore())
    with pytest.raises(ReductionError):
        rt.run()


def test_mixed_reducers_in_one_epoch_raise():
    class Mixed(Chare):
        def go(self, cb):
            reducer = "sum" if self.index1d % 2 == 0 else "max"
            self.contribute(1.0, reducer, cb)

    rt = Runtime(ABE, n_pes=1)
    arr = rt.create_array(Mixed, dims=(4,))
    arr.proxy.bcast("go", CkCallback.ignore())
    with pytest.raises(ReductionError):
        rt.run()


def test_reduction_on_sparse_home_pes():
    """Arrays hosted on a strict subset of PEs still reduce correctly
    (the tree spans only home PEs)."""
    rt = Runtime(ABE, n_pes=8)
    arr = rt.create_array(
        Contributor, dims=(4,),
        mapping=CustomMap(lambda idx, dims, n: [1, 3, 5, 7][idx[0]]),
    )
    results = []
    arr.proxy.bcast("go_sum", CkCallback.host(results.append))
    rt.run()
    assert results == [10.0]


def test_many_pes_reduction():
    rt = Runtime(ABE, n_pes=37)  # non-power-of-two tree
    arr = rt.create_array(Contributor, dims=(74,))
    results = []
    arr.proxy.bcast("go_sum", CkCallback.host(results.append))
    rt.run()
    assert results == [sum(range(1, 75))]


def test_pipelined_epochs():
    """Elements may enter epoch n+1 before epoch n completes."""

    class TwoEpoch(Chare):
        def go(self, cb1, cb2):
            self.contribute(1.0, "sum", cb1)
            self.contribute(2.0, "sum", cb2)

    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(TwoEpoch, dims=(8,))
    got = []
    arr.proxy.bcast(
        "go",
        CkCallback.host(lambda v: got.append(("first", v))),
        CkCallback.host(lambda v: got.append(("second", v))),
    )
    rt.run()
    assert ("first", 8.0) in got
    assert ("second", 16.0) in got
