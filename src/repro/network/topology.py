"""Machine topologies.

A topology answers two questions the interconnect models ask:

* :meth:`Topology.hops` — how many network hops separate two PEs'
  nodes (used by the Blue Gene/P torus latency model; the fat-tree
  model folds switch traversal into its base latency, so it reports a
  constant),
* :meth:`Topology.same_node` — whether two PEs share a node (intra-
  node transfers travel through shared memory, not the NIC).

PEs are numbered ``0 .. n_pes-1`` and packed onto nodes in rank order
(``cores_per_node`` consecutive PEs per node), matching how the paper's
jobs were laid out (e.g. "2 cores per node" for the OpenAtom Abe runs
maps PEs 0,1 to node 0, and so on).

The networkx-backed :class:`GraphTopology` exists for validation and
extension: tests cross-check the closed-form torus hop count against
shortest paths on an explicitly constructed torus graph.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import networkx as nx


class TopologyError(ValueError):
    """Raised for invalid topology construction or out-of-range PEs."""


class Topology:
    """Abstract base: a set of PEs packed onto nodes."""

    def __init__(self, n_nodes: int, cores_per_node: int) -> None:
        if n_nodes <= 0 or cores_per_node <= 0:
            raise TopologyError("n_nodes and cores_per_node must be positive")
        self.n_nodes = int(n_nodes)
        self.cores_per_node = int(cores_per_node)

    @property
    def n_pes(self) -> int:
        """Total PEs on this topology."""
        return self.n_nodes * self.cores_per_node

    def node_of(self, pe: int) -> int:
        """Node index hosting a PE rank."""
        if not (0 <= pe < self.n_pes):
            raise TopologyError(f"PE {pe} out of range [0, {self.n_pes})")
        return pe // self.cores_per_node

    def same_node(self, a: int, b: int) -> bool:
        """True when both PEs share a node."""
        return self.node_of(a) == self.node_of(b)

    def hops(self, a: int, b: int) -> int:
        """Network hops between the nodes hosting PEs ``a`` and ``b``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} nodes={self.n_nodes} "
            f"cores/node={self.cores_per_node}>"
        )


class FatTree(Topology):
    """A full-bisection fat-tree (Abe-like Infiniband cluster).

    Switch traversal latency is size-independent and folded into the
    interconnect model's base latency, so any inter-node pair is one
    logical hop.  This matches the paper's treatment: it never reasons
    about IB path length, only about protocol costs.
    """

    def hops(self, a: int, b: int) -> int:
        """Network hops between the nodes hosting two PEs."""
        return 0 if self.same_node(a, b) else 1


class Torus3D(Topology):
    """A 3D torus (Blue Gene/P-like), nodes indexed in x-major order.

    Hop distance is the Manhattan distance with wraparound per
    dimension — the standard minimal-path metric on a torus.
    """

    def __init__(self, dims: Tuple[int, int, int], cores_per_node: int = 4) -> None:
        if len(dims) != 3 or any(d <= 0 for d in dims):
            raise TopologyError(f"dims must be three positive ints, got {dims!r}")
        self.dims = (int(dims[0]), int(dims[1]), int(dims[2]))
        super().__init__(self.dims[0] * self.dims[1] * self.dims[2], cores_per_node)

    @classmethod
    def for_pes(cls, n_pes: int, cores_per_node: int = 4) -> "Torus3D":
        """Build a roughly cubic torus with at least ``n_pes`` PEs.

        BG/P allocations come in fixed partition shapes; for simulation
        purposes a near-cube with enough nodes preserves the hop-count
        statistics that matter.
        """
        n_nodes = max(1, -(-n_pes // cores_per_node))  # ceil division
        x = max(1, round(n_nodes ** (1.0 / 3.0)))
        while x > 1 and n_nodes % x:
            x -= 1
        rest = n_nodes // x
        y = max(1, round(rest ** 0.5))
        while y > 1 and rest % y:
            y -= 1
        z = rest // y
        topo = cls((x, y, z), cores_per_node)
        if topo.n_pes < n_pes:  # remainder from ceil division edge cases
            topo = cls((x, y, z + 1), cores_per_node)
        return topo

    def coords(self, node: int) -> Tuple[int, int, int]:
        """(x, y, z) coordinates of a node."""
        X, Y, Z = self.dims
        if not (0 <= node < self.n_nodes):
            raise TopologyError(f"node {node} out of range")
        return (node % X, (node // X) % Y, node // (X * Y))

    def hops(self, a: int, b: int) -> int:
        """Network hops between the nodes hosting two PEs."""
        na, nb = self.node_of(a), self.node_of(b)
        if na == nb:
            return 0
        total = 0
        for ca, cb, dim in zip(self.coords(na), self.coords(nb), self.dims):
            d = abs(ca - cb)
            total += min(d, dim - d)
        return total


class GraphTopology(Topology):
    """An arbitrary networkx graph of nodes; hops = shortest path.

    Heavyweight (all-pairs BFS on demand, cached) — intended for unit
    tests and custom-machine examples, not large performance runs.
    """

    def __init__(self, graph: nx.Graph, cores_per_node: int = 1) -> None:
        if graph.number_of_nodes() == 0:
            raise TopologyError("graph has no nodes")
        if not nx.is_connected(graph):
            raise TopologyError("topology graph must be connected")
        self.graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
        super().__init__(self.graph.number_of_nodes(), cores_per_node)
        self._dist_cache: dict[int, dict[int, int]] = {}

    def hops(self, a: int, b: int) -> int:
        """Network hops between the nodes hosting two PEs."""
        na, nb = self.node_of(a), self.node_of(b)
        if na == nb:
            return 0
        if na not in self._dist_cache:
            self._dist_cache[na] = nx.single_source_shortest_path_length(
                self.graph, na
            )
        return self._dist_cache[na][nb]

    @classmethod
    def torus(cls, dims: Tuple[int, int, int], cores_per_node: int = 1) -> "GraphTopology":
        """Explicit torus graph, used to validate :class:`Torus3D.hops`."""
        g = nx.grid_graph(dim=list(reversed(dims)), periodic=True)
        # networkx grid_graph(dim=[dz, dy, dx]) labels nodes (x, y, z)
        # with the *first* tuple slot ranging over the *last* dim entry;
        # relabel to the x-major integer order Torus3D uses.
        X, Y, Z = dims
        mapping = {}
        for node in g.nodes:
            x, y, z = node if isinstance(node, tuple) else (node, 0, 0)
            mapping[node] = x + X * (y + Y * z)
        g = nx.relabel_nodes(g, mapping)
        return cls(g, cores_per_node)


def pes_on_node(topo: Topology, node: int) -> Iterable[int]:
    """The PE ranks hosted by ``node``."""
    base = node * topo.cores_per_node
    return range(base, base + topo.cores_per_node)


def shard_nodes(topo: Topology, n_shards: int) -> "list[range]":
    """Partition the node ranks into ``n_shards`` contiguous blocks.

    Shard boundaries are *node*-aligned — no shard splits a node, so
    shared-memory (same-node) traffic never crosses shards — and blocks
    are contiguous in node-rank order.  On the fat tree contiguous node
    ranks are equivalent to any other grouping (all inter-node pairs are
    one hop); on the x-major torus they form slabs, which keeps
    nearest-neighbour traffic (the dominant pattern of the paper's
    apps, laid out block-wise over rank order) mostly shard-internal.

    Remainder nodes go to the leading shards; every shard receives at
    least one node (``n_shards`` must not exceed ``n_nodes``).
    """
    if not (1 <= n_shards <= topo.n_nodes):
        raise TopologyError(
            f"need 1 <= shards <= {topo.n_nodes} nodes, got {n_shards}"
        )
    base, rem = divmod(topo.n_nodes, n_shards)
    out = []
    start = 0
    for s in range(n_shards):
        count = base + (1 if s < rem else 0)
        out.append(range(start, start + count))
        start += count
    return out


def shard_of_node(topo: Topology, node: int, n_shards: int) -> int:
    """The shard owning ``node`` under :func:`shard_nodes` (closed form)."""
    base, rem = divmod(topo.n_nodes, n_shards)
    split = rem * (base + 1)
    if node < split:
        return node // (base + 1)
    return rem + (node - split) // base
