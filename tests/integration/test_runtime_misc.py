"""Edge coverage: makespan, collective lookup, trace invariants,
forced protocols end to end, virtual-handle semantics."""

import numpy as np
import pytest

from repro import ABE, SURVEYOR, Buffer, Chare, Runtime
from repro import ckdirect as ckd
from repro.charm import CharmError


class W(Chare):
    """Trivial worker used across these tests."""

    def work(self, dt):
        """Entry: burn dt seconds."""
        self.charge(dt)

    def noop(self):
        """Entry: nothing."""


def test_makespan_covers_busy_frontier():
    rt = Runtime(ABE, n_pes=1)
    arr = rt.create_array(W, dims=(1,))
    arr.proxy[0].work(2e-3)
    rt.run()
    assert rt.makespan >= 2e-3
    assert rt.makespan >= rt.now
    assert 0 < rt.utilization() <= 1.0


def test_collective_lookup_roundtrip():
    rt = Runtime(ABE, n_pes=2)
    arr = rt.create_array(W, dims=(4,))
    sec = arr.section([0, 1])
    assert rt.collective(arr.id) is arr
    assert rt.collective(sec.id) is sec
    with pytest.raises(CharmError):
        rt.collective(10_000)


def test_every_put_is_detected_exactly_once_ib():
    """Trace invariant on Infiniband across a multi-iteration app."""
    from repro.apps.stencil.driver import run_stencil

    r = run_stencil(ABE, 4, (8, 8, 8), vr=2, iterations=3, mode="ckd",
                    keep_runtime=True)
    t = r.runtime.trace
    assert t.counter("ckdirect.puts") == t.counter("pe.poll_detections")


def test_every_put_is_completed_exactly_once_bgp():
    from repro.apps.stencil.driver import run_stencil

    r = run_stencil(SURVEYOR, 4, (8, 8, 8), vr=2, iterations=3, mode="ckd",
                    keep_runtime=True)
    t = r.runtime.trace
    assert t.counter("ckdirect.puts") == t.counter("pe.direct_completions")


def test_forced_eager_large_message_end_to_end():
    """Forcing eager on a large message still delivers correctly (the
    ablation path) and skips the receiver registration charge."""
    from repro.apps.pingpong import charm_pingpong

    rt_normal = charm_pingpong(ABE, 100_000, 10).rtt

    from repro.charm import CustomMap, Payload, Runtime as RT
    from repro.apps.pingpong import CROSS_NODE, _MsgPinger

    rt = RT(ABE, n_pes=2 * ABE.cores_per_node)
    rt.fabric.force_protocol("eager")
    arr = rt.create_array(_MsgPinger, dims=(2,), ctor_args=(10, 100_000),
                          mapping=CROSS_NODE)
    arr.proxy[0].start()
    rt.run()
    forced = rt.result_time
    assert forced < rt_normal  # no packetization, no rendezvous/reg


def test_virtual_handle_sentinel_semantics():
    """Virtual buffers track arrival via the flag; sentinel_clear
    mirrors it."""
    rt = Runtime(ABE, n_pes=2)

    class V(Chare):
        """Holder for a virtual-buffer channel."""

        def __init__(self):
            self.h = ckd.create_handle(
                self, Buffer(nbytes=256), -1.0, lambda _: None
            )

    arr = rt.create_array(V, dims=(1,))
    h = arr.element(0).h
    assert not h.sentinel_clear()
    h.arrived = True
    assert h.sentinel_clear()


def test_charm_error_hierarchy():
    from repro.charm.errors import (
        CharmError,
        ContextError,
        EntryMethodError,
        MappingError,
        ReductionError,
    )

    for exc in (ContextError, EntryMethodError, MappingError, ReductionError):
        assert issubclass(exc, CharmError)
    from repro.ckdirect import ChannelStateError, CkDirectError, SentinelError

    assert issubclass(ChannelStateError, CkDirectError)
    assert issubclass(SentinelError, CkDirectError)


def test_two_runtimes_are_isolated():
    """Runtimes never share clocks, traces, or fabric state."""
    a, b = Runtime(ABE, 2), Runtime(ABE, 2)
    arr_a = a.create_array(W, dims=(1,))
    arr_a.proxy[0].work(1e-3)
    a.run()
    assert a.makespan >= 1e-3
    assert b.makespan == 0
    assert b.trace.counter("charm.msgs_sent") == 0


def test_section_multicast_payload_delivery():
    class R(Chare):
        """Receiver recording multicast payloads."""

        def __init__(self):
            self.got = None

        def take(self, data):
            """Entry: record the payload."""
            self.got = data

    rt = Runtime(ABE, n_pes=4)
    arr = rt.create_array(R, dims=(6,))
    sec = arr.section([1, 4])
    payload = np.arange(5.0)
    sec.bcast("take", payload)
    rt.run()
    assert np.array_equal(arr.element(1).got, payload)
    assert np.array_equal(arr.element(4).got, payload)
    assert arr.element(0).got is None
