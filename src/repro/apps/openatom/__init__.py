"""OpenAtom PairCalculator mini-app (paper §5, Figures 4 and 5)."""

from .config import OPENATOM_OOB, POINT_BYTES, OpenAtomConfig
from .driver import (
    MODES,
    OpenAtomMonitor,
    OpenAtomResult,
    abe_2cpn,
    openatom_pair,
    run_openatom,
)
from .gspace import GSpaceBase
from .paircalc import Ortho, PairCalcBase
from .variants import GSpaceCkd, GSpaceMsg, PairCalcCkd, PairCalcMsg

__all__ = [
    "OpenAtomConfig",
    "OpenAtomResult",
    "OpenAtomMonitor",
    "run_openatom",
    "openatom_pair",
    "abe_2cpn",
    "GSpaceBase",
    "GSpaceMsg",
    "GSpaceCkd",
    "PairCalcBase",
    "PairCalcMsg",
    "PairCalcCkd",
    "Ortho",
    "OPENATOM_OOB",
    "POINT_BYTES",
    "MODES",
]
