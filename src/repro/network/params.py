"""Calibrated machine parameter sets.

Every timing constant in the simulation lives here.  The values are
**calibrated against the paper's own microbenchmark tables** (Table 1
for Infiniband/Abe, Table 2 for Blue Gene/P/Surveyor): we decomposed
each reported round-trip time into the protocol components the paper
itself describes (software send overhead, wire latency, per-byte cost,
packetization, rendezvous, memory registration, scheduling, polling)
and solved for the constants.  The derivations are recorded inline so
the calibration is auditable; ``tests/bench/test_calibration.py``
asserts the resulting model stays within tolerance of the paper's
numbers and — more importantly — preserves every *shape* property the
paper argues from (orderings, crossovers, growth rates).

All times are in **seconds** (built with :func:`repro.util.units.us`)
and all sizes in bytes.

Calibration sketch (one-way latencies, microseconds)
----------------------------------------------------
Infiniband (NCSA Abe, Table 1; one-way = RTT/2):

* CkDirect = ``put_issue + alpha + B*beta + poll detection``:
  100 B → 6.19 µs, 500 KB → 647.2 µs gives ``beta ≈ 1.27e-3 µs/B``
  (~790 MB/s payload rate) and a fixed cost near 6.0 µs, split as
  put_issue 1.0 + alpha 4.0 + sweep 0.27 + detect 0.55 + callback 0.25.
* Default Charm++ eager (≤ ~2 KB incl. 80 B header):
  ``send sw 0.9 + proto 2.7 + alpha 4.0 + B_tot*beta + sched 2.8 +
  handler 0.7`` → 11.3 µs at 100 B (paper: 11.46).
* Packetized two-sided (2 KB – 20 KB): adds ``ceil(B/4096) * 3.0`` µs
  per-packet overhead → 23.6/33.1/52 µs at 5/10/20 KB (paper:
  23.7/33.1/48.1).
* Rendezvous RDMA (> 20 KB): adds ``rtt 5.5 + reg 22 + B*4e-5``
  instead of packetization → 78/91/170/694 µs at 30 K/40 K/100 K/500 K
  (paper: 80/96/177/700).
* MVAPICH two-sided: fixed ``sw 0.75 + recv 0.8 + tag 0.35 + alpha``,
  eager ≤ 8 KB at 2.5e-3 µs/B, rendezvous above at 1.35e-3 µs/B plus
  ``8.0 + (3.0 + 2e-5*B)``.  MVAPICH ``MPI_Put``: same transport minus
  tag matching plus post-start-complete-wait sync (2.6 µs eager /
  12.9 µs rendezvous) — reproducing the paper's observation that
  MPI_Put only overtakes two-sided above ~70 KB.
* MPICH-VMI: three-regime piecewise fit (the paper's own 70 KB vs
  100 KB numbers are only explicable by a protocol switch near 80 KB).

Blue Gene/P (ANL Surveyor, Table 2):

* CkDirect normal-path fixed cost 3.0 µs ≈ issue 0.4 + DCMF alpha 1.7
  + 1 hop × 0.1 + handler 0.5 + callback 0.3, with
  ``beta ≈ 2.671e-3 µs/B`` (~374 MB/s, consistent with one BG/P torus
  link); short path (< 224 B) fixed ≈ 2.35 µs.  DCMF's published
  one-way latency is 1.9 µs [Kumar et al. 2008], which our 100 B
  number (2.57 µs) sits just above, as the paper notes.
* Default Charm++ adds the 80 B header on the wire + alloc 0.8 +
  enqueue 0.55 + sched 2.0 + handler extra 0.9 + an RTS receive copy
  whose *exposed* cost saturates around 30 KB (beyond that the copy
  pipelines with packet arrival, since memcpy bandwidth far exceeds
  the 374 MB/s link) — matching the paper's observation that the gap
  starts ≈ 4.5 µs one-way and grows to ≈ 8.3 µs.
* IBM MPI: +1.25 µs software/tag-matching over the raw DCMF path plus
  an empirical mid-size buffering correction (the paper itself only
  "surmises some kind of buffering threshold" for this bump).
  MPI_Put adds ≈ 2.9 µs of post-start-complete-wait synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Sequence, Tuple

from ..util.units import us
from .topology import FatTree, Topology, Torus3D

# ---------------------------------------------------------------------------
# Component parameter groups
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CharmParams:
    """Software costs of the (default) Charm++ message path."""

    header_bytes: int = 80  # the paper: "≈ 80 bytes long"
    send_overhead: float = us(0.9)  # allocate envelope + issue send
    recv_overhead: float = us(0.0)  # RTS receive-side bookkeeping
    sched_overhead: float = us(2.8)  # dequeue + scheduler dispatch
    #: extra dispatch cost per message still waiting in the queue — the
    #: paper's "greater scheduling overheads because of increased queue
    #: occupancy" (§4.1).  Zero-occupancy dequeues (pingpong) pay none,
    #: so the Table 1/2 calibration is unaffected.
    sched_per_queued: float = us(0.1)
    handler_overhead: float = us(0.7)  # entry-method invocation
    # Application-level memcpy model (used when app code packs/unpacks):
    copy_base: float = us(0.1)
    copy_per_byte: float = us(2.0e-4)  # ~5 GB/s
    # RTS-internal receive copy (BG/P two-sided DCMF path only).  The
    # exposed cost saturates: beyond `rts_copy_cap` bytes the copy
    # pipelines with packet arrival (memcpy bw >> link bw).
    rts_copy_per_byte: float = 0.0
    rts_copy_cap: int = 0


@dataclass(frozen=True)
class CkDirectParams:
    """Software costs of the CkDirect path."""

    put_issue: float = us(1.0)  # CkDirect_put -> RDMA descriptor post
    poll_base: float = us(0.1)  # fixed cost of one poll-queue sweep
    #: per handle scanned in a sweep: an 8-byte read of memory the NIC
    #: just DMA'd (or that has gone cold since the last sweep) — a
    #: cache miss more often than not, hence ~50 ns.  This is the §5.2
    #: pathology's unit cost.
    poll_per_handle: float = us(0.05)
    detect_overhead: float = us(0.7)  # dequeue-from-pollq on detection
    callback_overhead: float = us(0.25)  # the plain-function callback
    handle_setup: float = us(25.0)  # one-time: create/register buffer
    assoc_overhead: float = us(12.0)  # one-time: assocLocal + register


@dataclass(frozen=True)
class IBParams:
    """Infiniband Reliable Connection transport model."""

    alpha: float = us(4.0)  # base wire+switch latency
    beta: float = us(1.27e-3)  # per-byte wire cost (~790 MB/s)
    proto_overhead: float = us(2.7)  # two-sided protocol processing
    eager_max: int = 2048  # total bytes (payload+header) sent eagerly
    packet_size: int = 4096
    packet_overhead: float = us(3.0)  # per-packet sw/NIC cost
    rdma_threshold: int = 20_480  # above: rendezvous RDMA
    rendezvous_rtt: float = us(5.5)  # control-message exchange
    reg_base: float = us(22.0)  # pin/register destination memory
    reg_per_byte: float = us(4.0e-5)
    #: Small RDMA writes move below the streaming rate while the DMA
    #: engine ramps (doorbell + PCIe round trips dominate): an extra
    #: per-byte cost on the first `rdma_ramp_cap` bytes of a put.
    #: Fit to Table 1's CkDirect row, whose 1-10 KB points sit above
    #: the large-message slope.
    rdma_ramp_per_byte: float = us(0.55e-3)
    rdma_ramp_cap: int = 4_000
    #: NIC occupancy per transferred byte as a fraction of `beta`.
    #: `beta` (calibrated from the pingpong slope) lumps wire time with
    #: per-byte software cost; only the wire share occupies the node's
    #: single DDR-IB HCA: ~787 MB/s effective / ~1.94 GB/s link = 0.41.
    occupancy_factor: float = 0.41
    # intra-node (shared memory) path
    shm_alpha: float = us(0.5)
    shm_beta: float = us(2.0e-4)  # ~5 GB/s


@dataclass(frozen=True)
class BGPParams:
    """Blue Gene/P DCMF transport model."""

    alpha: float = us(1.7)  # DCMF normal-message latency component
    alpha_short: float = us(1.3)  # short (< 224 B) fast path
    beta: float = us(2.671e-3)  # per-byte torus link cost (~374 MB/s)
    hop_latency: float = us(0.1)
    short_max: int = 224  # paper: short vs normal handler threshold
    issue_overhead: float = us(0.4)  # DCMF_Send software issue
    handler_normal: float = us(0.5)  # normal receipt handler
    handler_short: float = us(0.25)  # short receipt handler (incl copy)
    quad_word: int = 16  # Info header granularity
    info_qwords_ckdirect: int = 2  # paper: CkDirect Info = 2 quad words
    #: A BG/P node drives six torus links of ~425 MB/s; one transfer's
    #: occupancy of the node's aggregate injection capacity is
    #: (374 effective / 425 link) / 6 links ≈ 0.147 of its streaming time.
    occupancy_factor: float = 0.147
    # intra-node (shared memory) path
    shm_alpha: float = us(0.3)
    shm_beta: float = us(3.3e-4)  # ~3 GB/s


@dataclass(frozen=True)
class MPIFlavorParams:
    """One MPI implementation's software + transport constants.

    ``regimes`` is a sorted tuple of ``(max_total_bytes, fixed_extra,
    beta)`` rows: the transport picks the first row whose bound covers
    the message.  This expresses eager/mid/rendezvous protocol bands
    uniformly across flavors (MPICH-VMI needs three bands to explain
    the paper's own numbers).
    """

    name: str = "mpi"
    sw_send: float = us(0.75)
    sw_recv: float = us(0.8)
    tag_match: float = us(0.35)
    regimes: Tuple[Tuple[int, float, float], ...] = ()
    # rendezvous bookkeeping applied in the *last* regime only:
    rndv_fixed: float = 0.0
    reg_base: float = 0.0
    reg_per_byte: float = 0.0
    # one-sided (MPI_Put) model; ``put_sync_*`` is the
    # post-start-complete-wait epoch cost amortized per put.
    has_put: bool = False
    put_eager_max: int = 0
    put_sync_small: float = 0.0
    put_sync_large: float = 0.0
    unexpected_copy_per_byte: float = us(2.0e-4)  # late-recv bounce copy


@dataclass(frozen=True)
class ComputeParams:
    """Per-machine computation cost model (performance-mode charging)."""

    stencil_update: float = us(4.0e-3)  # 7-pt Jacobi update, per element
    dgemm_flops_per_sec: float = 7.5e9  # sustained, per core
    pack_per_byte: float = us(2.0e-4)  # application memcpy (~5 GB/s)
    pack_base: float = us(0.1)
    fft_per_point: float = us(2.0e-3)  # OpenAtom GSpace transform work


@dataclass(frozen=True)
class MachineParams:
    """Everything needed to instantiate a simulated machine."""

    name: str
    kind: str  # "ib" | "bgp"
    cores_per_node: int
    charm: CharmParams
    ckdirect: CkDirectParams
    net: object  # IBParams | BGPParams
    mpi_flavors: Dict[str, MPIFlavorParams]
    compute: ComputeParams
    default_mpi: str = ""

    def make_topology(self, n_pes: int) -> Topology:
        """Build this machine's topology for a PE count."""
        n_nodes = -(-n_pes // self.cores_per_node)
        if self.kind == "ib":
            return FatTree(n_nodes, self.cores_per_node)
        return Torus3D.for_pes(n_pes, self.cores_per_node)

    def with_overrides(self, **kwargs) -> "MachineParams":
        """A copy with selected top-level fields replaced (for ablations)."""
        return replace(self, **kwargs)


# ---------------------------------------------------------------------------
# Infiniband machines
# ---------------------------------------------------------------------------

_MVAPICH = MPIFlavorParams(
    name="MVAPICH",
    sw_send=us(0.75),
    sw_recv=us(0.8),
    tag_match=us(0.35),
    regimes=(
        (8_000, 0.0, us(2.5e-3)),  # eager, bounce-buffered
        (10**12, 0.0, us(1.35e-3)),  # rendezvous, zero-copy
    ),
    rndv_fixed=us(8.0),
    reg_base=us(3.0),
    reg_per_byte=us(2.0e-5),
    has_put=True,
    put_eager_max=8_000,
    put_sync_small=us(2.6),
    put_sync_large=us(13.2),
)

_MPICH_VMI = MPIFlavorParams(
    name="MPICH-VMI",
    sw_send=us(0.8),
    sw_recv=us(0.9),
    tag_match=us(0.4),
    regimes=(
        (16_000, 0.0, us(2.5e-3)),
        (80_000, us(1.9), us(2.2e-3)),
        (10**12, us(26.0), us(1.35e-3)),
    ),
    rndv_fixed=0.0,
    has_put=False,
)

ABE = MachineParams(
    name="Abe",
    kind="ib",
    cores_per_node=8,  # dual-socket quad-core Clovertown
    charm=CharmParams(),
    ckdirect=CkDirectParams(),
    net=IBParams(),
    mpi_flavors={"MVAPICH": _MVAPICH, "MPICH-VMI": _MPICH_VMI},
    default_mpi="MVAPICH",
    compute=ComputeParams(
        stencil_update=us(2.5e-3),
        dgemm_flops_per_sec=7.5e9,
        pack_per_byte=us(2.0e-4),
        fft_per_point=us(1.8e-3),
    ),
)

#: NCSA T3: dual-socket dual-core Woodcrest + Infiniband.  Same fabric
#: constants as Abe (both NCSA IB clusters of that era); fewer, slightly
#: faster cores with more bus bandwidth per core.
T3 = MachineParams(
    name="T3",
    kind="ib",
    cores_per_node=4,
    charm=CharmParams(),
    ckdirect=CkDirectParams(),
    net=IBParams(),
    mpi_flavors={"MVAPICH": _MVAPICH, "MPICH-VMI": _MPICH_VMI},
    default_mpi="MVAPICH",
    compute=ComputeParams(
        stencil_update=us(2.5e-3),
        dgemm_flops_per_sec=8.0e9,
        pack_per_byte=us(1.8e-4),
        fft_per_point=us(1.7e-3),
    ),
)

# ---------------------------------------------------------------------------
# Blue Gene/P
# ---------------------------------------------------------------------------

#: IBM MPI's mid-size "buffering threshold" correction, as a piecewise-
#: linear table over payload bytes.  Fit to Table 2; the paper itself
#: can only surmise the cause ("some kind of buffering threshold").
IBM_MPI_BUFFERING_TABLE: Tuple[Tuple[int, float], ...] = (
    (0, 0.0),
    (2_000, 0.0),
    (5_000, us(2.15)),
    (10_000, us(1.75)),
    (20_000, us(1.45)),
    (30_000, us(0.45)),
    (10**12, us(0.45)),
)

_IBM_MPI = MPIFlavorParams(
    name="IBM-MPI",
    sw_send=us(0.55),
    sw_recv=us(0.55),
    tag_match=us(0.45),
    regimes=((10**12, 0.0, 0.0),),  # transport cost comes from DCMF
    has_put=True,
    put_eager_max=0,
    put_sync_small=us(3.3),
    put_sync_large=us(3.3),
)

SURVEYOR = MachineParams(
    name="Surveyor",
    kind="bgp",
    cores_per_node=4,  # quad-core PPC450
    charm=CharmParams(
        send_overhead=us(0.55),
        recv_overhead=us(0.8),  # handler must provide a receive buffer
        sched_overhead=us(2.3),
        sched_per_queued=us(0.08),
        handler_overhead=us(0.9),
        copy_base=us(0.1),
        copy_per_byte=us(7.7e-4),  # ~1.3 GB/s PPC450 memcpy
        rts_copy_per_byte=us(1.3e-4),
        rts_copy_cap=30_000,
    ),
    ckdirect=CkDirectParams(
        put_issue=us(0.0),  # DCMF issue cost charged by the fabric
        poll_base=0.0,  # BG/P implementation does not poll
        poll_per_handle=0.0,
        detect_overhead=0.0,
        callback_overhead=us(0.3),
        handle_setup=us(8.0),
        assoc_overhead=us(4.0),
    ),
    net=BGPParams(),
    mpi_flavors={"IBM-MPI": _IBM_MPI},
    default_mpi="IBM-MPI",
    compute=ComputeParams(
        stencil_update=us(8.0e-3),
        dgemm_flops_per_sec=2.7e9,
        pack_per_byte=us(7.7e-4),
        fft_per_point=us(4.5e-3),
    ),
)

MACHINES: Dict[str, MachineParams] = {
    "Abe": ABE,
    "T3": T3,
    "Surveyor": SURVEYOR,
}


def interp_table(table: Sequence[Tuple[int, float]], x: float) -> float:
    """Piecewise-linear interpolation over a sorted (x, y) table."""
    lo_x, lo_y = table[0]
    if x <= lo_x:
        return lo_y
    for hi_x, hi_y in table[1:]:
        if x <= hi_x:
            frac = (x - lo_x) / (hi_x - lo_x)
            return lo_y + frac * (hi_y - lo_y)
        lo_x, lo_y = hi_x, hi_y
    return lo_y
