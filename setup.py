"""Build shim: editable installs plus the optional compiled DES core.

The ``repro.sim._ceventq`` extension (a hand-written CPython module —
the calendar event queue and its run loop in C) is *optional*: when no
C toolchain or Python headers are around, the build degrades to a
pure-Python install and :mod:`repro.sim.eventq` silently falls back to
the pure implementations.  ``pip install -e .[compiled]`` is the
documented spelling; the extra carries no dependencies (nothing to
download — the extension needs only a C compiler), it simply signals
intent, and this module makes the extension build non-fatal either
way.

Build in place without pip::

    python setup.py build_ext --inplace
"""

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class optional_build_ext(build_ext):
    """Build the compiled core if possible; never fail the install."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # toolchain missing: pure-Python install
            self._warn(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._warn(exc)

    @staticmethod
    def _warn(exc):
        print(f"WARNING: building repro.sim._ceventq failed ({exc}); "
              "continuing with the pure-Python event queues")


setup(
    ext_modules=[
        Extension(
            "repro.sim._ceventq",
            sources=["src/repro/sim/_ceventq.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": optional_build_ext},
)
