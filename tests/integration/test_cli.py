"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig5" in out


def test_pingpong_stacks(capsys):
    for stack in ("charm", "ckdirect", "mpi", "mpi-put"):
        assert main(["pingpong", "--stack", stack, "--machine", "Abe",
                     "--size", "1000", "--iterations", "10"]) == 0
        out = capsys.readouterr().out
        assert "us round trip" in out


def test_pingpong_bgp(capsys):
    assert main(["pingpong", "--machine", "Surveyor", "--size", "100",
                 "--iterations", "10"]) == 0
    assert "Surveyor" in capsys.readouterr().out


def test_fig2a_small(capsys):
    assert main(["fig2a", "--pes", "8", "16"]) == 0
    out = capsys.readouterr().out
    assert "improvement %" in out


def test_table_runs(capsys):
    assert main(["table1", "--iterations", "5"]) == 0
    out = capsys.readouterr().out
    assert "CkDirect CHARM++ (ours)" in out
    assert "(paper)" in out


def test_unknown_artifact_rejected():
    with pytest.raises(SystemExit):
        main(["nonsense"])


def test_bad_machine_rejected():
    with pytest.raises(SystemExit):
        main(["pingpong", "--machine", "Frontier"])


def test_profile_artifact(capsys):
    assert main(["profile", "--app", "pingpong", "--machine", "Abe",
                 "--size", "1000", "--iterations", "5"]) == 0
    out = capsys.readouterr().out
    assert "profile: pingpong/ckdirect on Abe" in out
    assert "reconciliation vs Trace counters" in out
    assert "MISMATCH" not in out
    assert "critical path:" in out


def test_profile_rejects_bad_stack(capsys):
    assert main(["profile", "--app", "stencil", "--stack", "mpi"]) == 2
    err = capsys.readouterr().err
    assert "supports stacks" in err


def test_trace_out_unwritable_path(capsys):
    assert main(["pingpong", "--iterations", "5",
                 "--trace-out", "/nonexistent-dir/t.json"]) == 2
    assert "cannot write trace" in capsys.readouterr().err


def test_trace_out_writes_valid_chrome_json(tmp_path, capsys):
    import json

    path = tmp_path / "pp.trace.json"
    assert main(["pingpong", "--machine", "Abe", "--stack", "ckdirect",
                 "--size", "2000", "--iterations", "10",
                 "--trace-out", str(path)]) == 0
    out = capsys.readouterr().out
    assert "us round trip" in out
    assert f"trace events to {path}" in out

    doc = json.loads(path.read_text())
    data = [r for r in doc["traceEvents"] if r["ph"] in ("X", "i")]
    assert data
    names = {r["name"].split(":")[0] for r in data}
    assert {"poll_sweep", "put_complete"} <= names
    # at least one complete span on every PE track that saw events,
    # and monotone timestamps within each track
    tracks = {}
    for r in data:
        tracks.setdefault((r["pid"], r["tid"]), []).append(r)
    pe_tracks = [k for k in tracks if k[1] >= 2]  # tid 0/1 are net/host
    assert pe_tracks
    for key in pe_tracks:
        assert any(r["ph"] == "X" for r in tracks[key]), key
    for key, rows in tracks.items():
        ts = [r["ts"] for r in rows]
        assert ts == sorted(ts), key


def test_trace_out_profile(tmp_path, capsys):
    import json

    path = tmp_path / "prof.trace.json"
    assert main(["profile", "--size", "1000", "--iterations", "5",
                 "--trace-out", str(path)]) == 0
    assert "wrote" in capsys.readouterr().out
    assert json.loads(path.read_text())["traceEvents"]


def test_trace_out_multi_run_artifact(tmp_path):
    import json

    path = tmp_path / "fig2a.trace.json"
    assert main(["fig2a", "--pes", "8", "--trace-out", str(path)]) == 0
    doc = json.loads(path.read_text())
    pids = {r["pid"] for r in doc["traceEvents"]}
    assert len(pids) > 1  # one trace process per simulated runtime


def test_nonpositive_iterations_rejected():
    with pytest.raises(SystemExit):
        main(["pingpong", "--iterations", "0"])


def test_nonpositive_jobs_and_shards_flags_rejected():
    for flag in ("--jobs", "--shards"):
        for bad in ("0", "-2"):
            with pytest.raises(SystemExit):
                main(["table1", flag, bad])


def test_malformed_jobs_env_is_clear_error(monkeypatch, capsys):
    """Garbage REPRO_JOBS gives a one-line error, not a traceback."""
    monkeypatch.setenv("REPRO_JOBS", "many")
    assert main(["table1", "--iterations", "5"]) == 2
    err = capsys.readouterr().err
    assert "REPRO_JOBS must be a positive integer" in err
    assert "Traceback" not in err


def test_malformed_shards_env_is_clear_error(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_SHARDS", "lots")
    assert main(["fig2a", "--pes", "8"]) == 2
    err = capsys.readouterr().err
    assert "REPRO_SHARDS must be a positive integer" in err
    assert "Traceback" not in err


def test_negative_jobs_env_is_clear_error(monkeypatch, capsys):
    monkeypatch.setenv("REPRO_JOBS", "-1")
    assert main(["table1", "--iterations", "5"]) == 2
    assert "at least 1" in capsys.readouterr().err


def test_jobs_flag_overrides_env(monkeypatch, capsys):
    """Documented precedence: flag > env > default."""
    monkeypatch.setenv("REPRO_JOBS", "junk-value")
    # The flag re-exports a valid REPRO_JOBS, so the run succeeds.
    assert main(["table1", "--iterations", "5", "--jobs", "2"]) == 0
    assert "CkDirect CHARM++ (ours)" in capsys.readouterr().out


def test_list_includes_service_commands(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "serve" in out and "submit" in out


def test_serve_flag_validation():
    from repro.serve.cli import serve_main

    assert serve_main(["--workers", "0"]) == 2
    assert serve_main(["--queue", "0"]) == 2
    assert serve_main(["--cache-mb", "0"]) == 2
    assert serve_main(["--jobs-per-run", "0"]) == 2
    assert serve_main(["--port", "-1"]) == 2


def test_submit_requires_kind_or_spec_json():
    from repro.serve.cli import submit_main

    with pytest.raises(SystemExit):
        submit_main([])
    with pytest.raises(SystemExit):
        submit_main(["--kind", "pingpong", "--spec-json", "x.json"])


def test_submit_bad_param_rejected(capsys):
    from repro.serve.cli import submit_main

    assert submit_main(["--kind", "pingpong", "--param", "noequals"]) == 2
    assert "--param needs K=V" in capsys.readouterr().err


def test_submit_unreachable_server(capsys):
    from repro.serve.cli import submit_main

    # Port 1 is never listening; expect a clean error, not a traceback.
    assert submit_main(["--kind", "pingpong", "--port", "1",
                        "--param", "size=100"]) == 2
    assert "cannot reach server" in capsys.readouterr().err
