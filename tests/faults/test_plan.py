"""Unit tests for fault plans, profiles, and reliability knobs."""

import pytest

from repro.faults import (
    PROFILES,
    FaultConfigError,
    FaultPlan,
    FaultRule,
    ReliabilityParams,
    parse_profiles,
)


# ---------------------------------------------------------------------------
# FaultRule
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("field", ["drop", "dup", "delay", "torn", "stall"])
@pytest.mark.parametrize("value", [-0.1, 1.5])
def test_rule_rejects_non_probabilities(field, value):
    with pytest.raises(FaultConfigError):
        FaultRule(**{field: value})


@pytest.mark.parametrize("field", ["delay_mean", "stall_time"])
def test_rule_rejects_negative_magnitudes(field):
    with pytest.raises(FaultConfigError):
        FaultRule(**{field: -1e-6})


def test_rule_active():
    assert not FaultRule().active
    assert not FaultRule(delay_mean=1e-3).active  # magnitude alone: inert
    for field in ("drop", "dup", "delay", "torn", "stall"):
        assert FaultRule(**{field: 0.01}).active


# ---------------------------------------------------------------------------
# FaultPlan
# ---------------------------------------------------------------------------


def test_plan_rejects_unknown_scope():
    with pytest.raises(FaultConfigError):
        FaultPlan(profile="x", rules=(("nic", FaultRule(drop=0.5)),))


def test_plan_rule_lookup_defaults_to_no_faults():
    plan = FaultPlan(profile="x", rules=(("put", FaultRule(drop=0.5)),))
    assert plan.rule("put").drop == 0.5
    assert not plan.rule("charm").active
    assert plan.active


def test_named_profiles():
    for name in PROFILES:
        plan = FaultPlan.named(name)
        assert plan.profile == name
        assert plan.active == (name != "none")
    with pytest.raises(FaultConfigError):
        FaultPlan.named("packet-storm")


def test_builtin_profiles_spare_the_control_plane():
    """Built-in profiles must only fault put/ack: those are the scopes
    the reliability layer can recover, which is what keeps the chaos
    oracle's bit-identity guarantee sound."""
    for name, rules in PROFILES.items():
        for scope, rule in rules:
            assert scope in ("put", "ack"), (name, scope)


def test_with_seed():
    plan = FaultPlan.named("drop", seed=1)
    reseeded = plan.with_seed(2)
    assert reseeded.seed == 2
    assert reseeded.rules == plan.rules
    assert plan.seed == 1  # frozen original untouched


# ---------------------------------------------------------------------------
# parse_profiles
# ---------------------------------------------------------------------------


def test_parse_profiles():
    assert parse_profiles("all") == tuple(sorted(PROFILES))
    assert parse_profiles("drop, torn-sentinel") == ("drop", "torn-sentinel")
    with pytest.raises(FaultConfigError):
        parse_profiles("drop,bogus")
    with pytest.raises(FaultConfigError):
        parse_profiles(" , ")


# ---------------------------------------------------------------------------
# ReliabilityParams
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("kwargs", [
    {"rto_initial": 0.0},
    {"rto_backoff": 0.5},
    {"max_attempts": 0},
    {"watchdog_period": 0.0},
    {"watchdog_timeout": 0.0},
])
def test_reliability_params_validation(kwargs):
    with pytest.raises(FaultConfigError):
        ReliabilityParams(**kwargs)


def test_rto_backoff_schedule():
    params = ReliabilityParams(rto_initial=100e-6, rto_backoff=2.0)
    assert params.rto(1) == pytest.approx(100e-6)
    assert params.rto(2) == pytest.approx(200e-6)
    assert params.rto(4) == pytest.approx(800e-6)
