"""Minimal MPI datatype surface: named types with byte sizes.

The simulation moves byte counts, not typed elements, but application
code reads more naturally when it speaks in datatypes — and the
benches mirror the paper's "message size = user data bytes"
convention through :func:`count_bytes`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Datatype:
    """A named MPI datatype with its byte size."""
    name: str
    size: int  # bytes

    def __mul__(self, count: int) -> int:
        return self.size * int(count)


MPI_BYTE = Datatype("MPI_BYTE", 1)
MPI_CHAR = Datatype("MPI_CHAR", 1)
MPI_INT = Datatype("MPI_INT", 4)
MPI_FLOAT = Datatype("MPI_FLOAT", 4)
MPI_LONG = Datatype("MPI_LONG", 8)
MPI_DOUBLE = Datatype("MPI_DOUBLE", 8)
MPI_DOUBLE_COMPLEX = Datatype("MPI_DOUBLE_COMPLEX", 16)

_NUMPY_MAP = {
    np.dtype(np.int32): MPI_INT,
    np.dtype(np.int64): MPI_LONG,
    np.dtype(np.float32): MPI_FLOAT,
    np.dtype(np.float64): MPI_DOUBLE,
    np.dtype(np.complex128): MPI_DOUBLE_COMPLEX,
    np.dtype(np.uint8): MPI_BYTE,
}


def from_numpy(dtype) -> Datatype:
    """The MPI datatype matching a numpy dtype."""
    dt = np.dtype(dtype)
    try:
        return _NUMPY_MAP[dt]
    except KeyError:
        raise KeyError(f"no MPI datatype registered for numpy dtype {dt}") from None


def count_bytes(count: int, datatype: Datatype) -> int:
    """User-data bytes for ``count`` elements of ``datatype``."""
    if count < 0:
        raise ValueError(f"negative count {count}")
    return count * datatype.size
