"""Unit tests for communication buffers (real views + virtual)."""

import numpy as np
import pytest

from repro.util.buffers import Buffer, BufferError_


def test_real_buffer_nbytes():
    b = Buffer(array=np.zeros(10))
    assert b.nbytes == 80
    assert not b.is_virtual


def test_virtual_buffer():
    b = Buffer.virtual(1234)
    assert b.nbytes == 1234
    assert b.is_virtual


def test_requires_exactly_one_backing():
    with pytest.raises(BufferError_):
        Buffer()
    with pytest.raises(BufferError_):
        Buffer(array=np.zeros(2), nbytes=16)


def test_virtual_needs_positive_size():
    with pytest.raises(BufferError_):
        Buffer.virtual(0)
    with pytest.raises(BufferError_):
        Buffer.virtual(-5)


def test_copy_from_same_shape():
    src = Buffer(array=np.arange(6, dtype=float))
    dst = Buffer(array=np.zeros(6))
    dst.copy_from(src)
    assert np.array_equal(dst.array, np.arange(6, dtype=float))


def test_copy_from_reshapes_contiguous_source():
    src = Buffer(array=np.arange(6, dtype=float))
    target = np.zeros((2, 3))
    dst = Buffer(array=target)
    dst.copy_from(src)
    assert np.array_equal(target, np.arange(6, dtype=float).reshape(2, 3))


def test_copy_into_noncontiguous_view_writes_through():
    """The CkDirect zero-copy property: a put into a view of the middle
    of a matrix lands exactly there."""
    matrix = np.zeros((4, 5))
    row_view = Buffer(array=matrix[2, :])  # a row in the middle
    row_view.copy_from(Buffer(array=np.arange(5, dtype=float)))
    assert np.array_equal(matrix[2], np.arange(5, dtype=float))
    assert np.all(matrix[0] == 0) and np.all(matrix[3] == 0)

    col_view = Buffer(array=matrix[:, 1])  # strided column view
    col_view.copy_from(Buffer(array=np.full(4, 7.0)))
    assert np.array_equal(matrix[:, 1], np.full(4, 7.0))


def test_copy_size_mismatch_rejected():
    with pytest.raises(BufferError_):
        Buffer(array=np.zeros(4)).copy_from(Buffer(array=np.zeros(5)))


def test_copy_dtype_mismatch_rejected():
    with pytest.raises(BufferError_):
        Buffer(array=np.zeros(4)).copy_from(
            Buffer(array=np.zeros(8, dtype=np.float32))
        )


def test_copy_with_virtual_side_is_timing_only():
    v = Buffer.virtual(32)
    r = Buffer(array=np.ones(4))
    r.copy_from(v)  # no-op, no error
    assert np.all(r.array == 1)
    v.copy_from(r)  # also fine


def test_last_element_on_contiguous():
    b = Buffer(array=np.arange(5, dtype=float))
    assert b.get_last() == 4.0
    b.set_last(-1.0)
    assert b.array[-1] == -1.0


def test_last_element_on_noncontiguous_view():
    m = np.arange(20, dtype=float).reshape(4, 5)
    col = Buffer(array=m[:, 2])
    assert col.get_last() == m[3, 2]
    col.set_last(-9.0)
    assert m[3, 2] == -9.0


def test_last_element_on_2d_view():
    m = np.zeros((6, 6))
    face = Buffer(array=m[1:-1, 0])
    face.set_last(5.0)
    assert m[4, 0] == 5.0


def test_virtual_has_no_elements():
    v = Buffer.virtual(8)
    with pytest.raises(BufferError_):
        v.get_last()
    with pytest.raises(BufferError_):
        v.set_last(0.0)


def test_snapshot_is_independent_copy():
    arr = np.arange(4, dtype=float)
    b = Buffer(array=arr)
    snap = b.snapshot()
    arr[0] = 99.0
    assert snap[0] == 0.0
    assert Buffer.virtual(8).snapshot() is None


def test_view_shares_memory():
    arr = np.zeros(10)
    b = Buffer(array=arr)
    sub = b.view(slice(2, 5))
    sub.array[:] = 3.0
    assert np.all(arr[2:5] == 3.0)
    with pytest.raises(BufferError_):
        Buffer.virtual(8).view(slice(0, 1))
