"""Strided puts — the paper's "strided communication patterns"
extension (§6), in the spirit of ARMCI's strided RMA (§2.3).

A strided channel targets a *non-contiguous* receive region (e.g. a
column of a row-major matrix).  The data still lands exactly where it
is needed — :class:`~repro.util.buffers.Buffer` views write through to
the underlying array — but the transfer costs more to issue: an RDMA
engine needs one descriptor (or one scatter/gather entry) per
contiguous segment.

``segment_count`` computes the number of maximal contiguous runs of a
numpy view directly from its shape/strides, so the cost model cannot
drift from the data layout.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from ...util.units import us
from ...util.buffers import Buffer
from .. import api
from ..handle import CkDirectError, CkDirectHandle, UserCallback

if TYPE_CHECKING:  # pragma: no cover
    from ...charm.chare import Chare

#: Additional sender-side issue cost per extra RDMA segment descriptor.
PER_SEGMENT_OVERHEAD = us(0.3)


def segment_count(array: np.ndarray) -> int:
    """Number of maximal contiguous runs covering ``array``.

    A C-contiguous array is one segment.  Otherwise, find the largest
    suffix of dimensions that is laid out contiguously; every index
    combination of the remaining prefix dimensions starts a new
    segment.
    """
    if array.ndim == 0 or array.size == 0:
        return 1
    if array.flags["C_CONTIGUOUS"]:
        return 1
    # Length-1 dimensions are layout-neutral; drop them.
    dims = [
        (s, st) for s, st in zip(array.shape, array.strides) if s > 1
    ]
    if not dims:
        return 1
    # Find the longest suffix of dimensions that is laid out densely;
    # everything in front of it multiplies into the segment count.
    expected = array.itemsize
    first_contig = len(dims)
    for i in range(len(dims) - 1, -1, -1):
        size, stride = dims[i]
        if stride == expected:
            expected *= size
            first_contig = i
        else:
            break
    segments = 1
    for size, _ in dims[:first_contig]:
        segments *= size
    return segments


class StridedChannel:
    """A CkDirect channel onto a non-contiguous destination view."""

    def __init__(self, handle: CkDirectHandle, segments: int) -> None:
        if segments < 1:
            raise CkDirectError(f"segments must be >= 1, got {segments}")
        self.handle = handle
        self.segments = segments

    def put(self) -> None:
        """Issue the strided put: one descriptor per segment."""
        rt = self.handle.rt
        extra = (self.segments - 1) * PER_SEGMENT_OVERHEAD
        api.put(self.handle, issue_cost=rt.machine.ckdirect.put_issue + extra)
        rt.trace.count("ckdirect.strided_puts")
        rt.trace.count("ckdirect.strided_segments", self.segments)


def create_strided_channel(
    chare: "Chare",
    buffer: Buffer,
    oob: Any,
    callback: UserCallback,
    cbdata: Any = None,
    segments: Optional[int] = None,
    name: str = "",
) -> StridedChannel:
    """Receiver side: a channel onto a strided view.

    ``segments`` defaults to the layout-derived
    :func:`segment_count` for real buffers (and must be given
    explicitly for virtual ones)."""
    if segments is None:
        if buffer.is_virtual:
            raise CkDirectError("virtual strided channels need explicit segments=")
        segments = segment_count(buffer.array)
    handle = api.create_handle(chare, buffer, oob, callback, cbdata, name=name)
    return StridedChannel(handle, segments)
