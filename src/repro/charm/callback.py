"""CkCallback: a deliverable continuation.

Reductions, application completion notifications, and CkDirect all
need "something to invoke with a value later".  A :class:`CkCallback`
names one of:

* a **host** function — runs outside any PE at the completion instant
  (used by drivers to record results; costs nothing, like the
  bookkeeping a real driver does off the critical path),
* a **send** — an entry method on one chare-array element,
* a **bcast** — an entry method on every element of an array,
* **ignore** — discard the value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple

from .errors import CharmError

if TYPE_CHECKING:  # pragma: no cover
    from .array import ChareArray
    from .runtime import Runtime


class CkCallback:
    """A deliverable continuation (host / send / bcast / ignore)."""
    KINDS = ("host", "send", "bcast", "ignore")

    def __init__(
        self,
        kind: str,
        fn: Optional[Callable[..., Any]] = None,
        array: Optional["ChareArray"] = None,
        index: Optional[Tuple[int, ...]] = None,
        method: Optional[str] = None,
    ) -> None:
        if kind not in self.KINDS:
            raise CharmError(f"unknown callback kind {kind!r}")
        if kind == "host" and fn is None:
            raise CharmError("host callback needs fn=")
        if kind in ("send", "bcast") and (array is None or method is None):
            raise CharmError(f"{kind} callback needs array= and method=")
        if kind == "send" and index is None:
            raise CharmError("send callback needs index=")
        self.kind = kind
        self.fn = fn
        self.array = array
        self.index = index
        self.method = method

    # Convenience constructors ------------------------------------------------

    @classmethod
    def host(cls, fn: Callable[..., Any]) -> "CkCallback":
        """Callback running a host function."""
        return cls("host", fn=fn)

    @classmethod
    def send(cls, array: "ChareArray", index, method: str) -> "CkCallback":
        """Callback invoking an entry method on one element."""
        return cls("send", array=array, index=array.normalize_index(index), method=method)

    @classmethod
    def bcast(cls, array: "ChareArray", method: str) -> "CkCallback":
        """Invoke an entry method on every member."""
        return cls("bcast", array=array, method=method)

    @classmethod
    def ignore(cls) -> "CkCallback":
        """Callback that discards the value."""
        return cls("ignore")

    # ------------------------------------------------------------------

    def invoke(self, rt: "Runtime", value: Any = None) -> None:
        """Fire the callback from the current execution context."""
        if self.kind == "ignore":
            return
        if self.kind == "host":
            rt.host_call(self.fn, value)
            return
        args = () if value is None else (value,)
        if self.kind == "send":
            rt.send(self.array, self.index, self.method, args)
        else:  # bcast
            rt.bcast(self.array, self.method, args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind == "host":
            return f"<CkCallback host {getattr(self.fn, '__name__', self.fn)!r}>"
        if self.kind == "ignore":
            return "<CkCallback ignore>"
        return f"<CkCallback {self.kind} array{self.array.id}.{self.method}>"
