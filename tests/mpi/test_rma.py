"""Unit tests for MPI RMA: windows, puts, and the three sync schemes."""

import pytest

from repro import ABE, SURVEYOR
from repro.mpi import MPIWorld, RMAError, Win


def _world(machine=ABE, n=2, flavor=None):
    world = MPIWorld(machine, n, flavor=flavor)
    return world, Win(world)


def test_win_requires_put_capable_flavor():
    world = MPIWorld(ABE, 2, flavor="MPICH-VMI")
    with pytest.raises(RMAError, match="no one-sided"):
        Win(world)


def test_calibrated_put_completes():
    world, win = _world()
    done = []
    win.put(world.ranks[0], 1, 10_000, on_complete=lambda: done.append(world.sim.now))
    world.run()
    assert done and done[0] > 0


def test_calibrated_put_bgp():
    world, win = _world(SURVEYOR)
    done = []
    win.put(world.ranks[0], 1, 10_000, on_complete=lambda: done.append(world.sim.now))
    world.run()
    assert done


def test_put_raw_requires_access_epoch():
    world, win = _world()
    with pytest.raises(RMAError, match="outside an access epoch"):
        win.put_raw(world.ranks[0], 1, 100)


def test_pscw_full_epoch():
    world, win = _world()
    r0, r1 = world.ranks
    log = []

    win.post(r1, [0])
    win.wait(r1, lambda: log.append("wait-done"))

    def started():
        log.append("started")
        win.put_raw(r0, 1, 1000)
        win.complete(r0, 1)
        log.append("completed")

    win.start(r0, started)
    world.run()
    assert log == ["started", "completed", "wait-done"]


def test_pscw_wait_flushes_put_data():
    """wait() must not fire before the put's data has been delivered."""
    world, win = _world()
    r0, r1 = world.ranks
    t = {}
    nbytes = 200_000

    win.post(r1, [0])
    win.wait(r1, lambda: t.setdefault("wait", world.sim.now))

    def started():
        win.put_raw(r0, 1, nbytes)
        win.complete(r0, 1)

    win.start(r0, started)
    world.run()
    wire = nbytes * world.params.regimes[-1][2]
    assert t["wait"] >= wire


def test_pscw_double_post_rejected():
    world, win = _world()
    win.post(world.ranks[1], [0])
    with pytest.raises(RMAError, match="posted twice"):
        win.post(world.ranks[1], [0])


def test_pscw_wait_without_post_rejected():
    world, win = _world()
    with pytest.raises(RMAError, match="without post"):
        win.wait(world.ranks[1], lambda: None)


def test_complete_without_start_rejected():
    world, win = _world()
    with pytest.raises(RMAError, match="without start"):
        win.complete(world.ranks[0], 1)


def test_pscw_multiple_origins():
    world, win = _world(n=3)
    r0, r1, r2 = world.ranks
    log = []
    win.post(r2, [0, 1])
    win.wait(r2, lambda: log.append("released"))
    for origin in (r0, r1):
        def started(o=origin):
            win.put_raw(o, 2, 500)
            win.complete(o, 2)
        win.start(origin, started)
    world.run()
    assert log == ["released"]


def test_fence_collective_release():
    world, win = _world(n=4)
    released = []
    for r in world.ranks:
        win.fence(r, lambda rank=r.rank: released.append(rank))
    world.run()
    assert sorted(released) == [0, 1, 2, 3]


def test_fence_waits_for_all():
    """The fence must not release before the last rank enters it."""
    world, win = _world(n=2)
    t = {}
    win.fence(world.ranks[0], lambda: t.setdefault("r0", world.sim.now))
    world.run()
    assert "r0" not in t  # only one rank entered so far
    win.fence(world.ranks[1], lambda: t.setdefault("r1", world.sim.now))
    world.run()
    assert "r0" in t and "r1" in t


def test_lock_unlock_roundtrip():
    world, win = _world()
    r0 = world.ranks[0]
    log = []

    def locked():
        log.append("locked")
        win.put_raw(r0, 1, 1000)
        win.unlock(r0, 1, lambda: log.append("unlocked"))

    win.lock(r0, 1, locked)
    world.run()
    assert log == ["locked", "unlocked"]


def test_lock_contention_queues_fifo():
    world, win = _world(n=3)
    r0, r1 = world.ranks[0], world.ranks[1]
    order = []

    def r0_locked():
        order.append("r0")
        win.unlock(r0, 2, lambda: order.append("r0-unlocked"))

    def r1_locked():
        order.append("r1")
        win.unlock(r1, 2, lambda: order.append("r1-unlocked"))

    win.lock(r0, 2, r0_locked)
    win.lock(r1, 2, r1_locked)
    world.run()
    # FIFO: r0 holds first; r1 only after r0's release reaches the
    # target (the unlock *ack* to r0 may still be in flight then)
    assert order.index("r0") < order.index("r1")
    assert "r0-unlocked" in order and "r1-unlocked" in order


def test_unlock_without_lock_rejected():
    world, win = _world()
    with pytest.raises(RMAError, match="does not hold"):
        win.unlock(world.ranks[0], 1, lambda: None)
