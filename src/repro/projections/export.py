"""Exporters: Chrome trace-event JSON and terminal summaries.

:func:`chrome_trace` renders an :class:`~repro.projections.eventlog.EventLog`
in the Chrome trace-event format (the ``traceEvents`` JSON array), so a
run opens directly in Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``:

* each registered *run* (one ``Runtime`` / ``MPIWorld``) is a trace
  **process** (pid), labelled by machine and stack;
* each PE is a **thread** (tid) inside its run — one track per PE,
  named ``PE 0`` … ``PE n-1`` — plus pseudo-tracks ``host`` (mainchare
  injections) and ``net`` (wire-level events);
* spans become complete events (``ph: "X"``), instants become instant
  events (``ph: "i"``); timestamps are microseconds, as the format
  requires; each event's ``args`` carry its ``eid`` and ``cause`` so
  causality survives the export.

:func:`render_utilization` prints the per-PE utilization profile as a
terminal table with bar-chart sparks.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from .analysis import utilization_profile
from .events import HOST_TRACK, NET_TRACK, TraceEvent
from .eventlog import EventLog

#: Fixed pseudo-track thread ids (PE k maps to tid k + 2).
_NET_TID = 0
_HOST_TID = 1


def _tid(pe: int) -> int:
    if pe >= 0:
        return pe + 2
    return _HOST_TID if pe == HOST_TRACK else _NET_TID


def _track_name(pe: int) -> str:
    if pe >= 0:
        return f"PE {pe}"
    return "host" if pe == HOST_TRACK else "net"


def _event_json(ev: TraceEvent) -> Dict:
    args = dict(ev.args) if ev.args else {}
    args["eid"] = ev.eid
    if ev.cause is not None:
        args["cause"] = ev.cause
    rec: Dict = {
        "name": ev.name,
        "cat": ev.category,
        "pid": ev.run,
        "tid": _tid(ev.pe),
        "ts": ev.t0 * 1e6,
        "args": args,
    }
    if ev.is_span:
        rec["ph"] = "X"
        rec["dur"] = ev.duration * 1e6
    else:
        rec["ph"] = "i"
        rec["s"] = "t"  # thread-scoped instant
    return rec


def chrome_trace(log: EventLog) -> Dict:
    """The full Chrome trace-event document as a plain dict."""
    records: List[Dict] = []
    for run, (label, _owner, n_pes) in enumerate(log.runs):
        records.append({
            "ph": "M", "pid": run, "name": "process_name",
            "args": {"name": label or f"run {run}"},
        })
        # One named track per PE of the run, declared up front so the
        # timeline shows every PE even when some stayed silent.
        for pe in range(n_pes):
            records.append({
                "ph": "M", "pid": run, "tid": _tid(pe), "name": "thread_name",
                "args": {"name": _track_name(pe)},
            })
            records.append({
                "ph": "M", "pid": run, "tid": _tid(pe), "name": "thread_sort_index",
                "args": {"sort_index": _tid(pe)},
            })
    # Pseudo-tracks only where events actually landed.
    seen_pseudo = {(ev.run, ev.pe) for ev in log.events if ev.pe < 0}
    for run, pe in sorted(seen_pseudo):
        records.append({
            "ph": "M", "pid": run, "tid": _tid(pe), "name": "thread_name",
            "args": {"name": _track_name(pe)},
        })
    records.extend(_event_json(ev) for ev in
                   sorted(log.events, key=lambda e: (e.run, e.t0, e.eid)))
    return {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.projections",
            "runs": [label for label, _o, _n in log.runs],
            "time_unit": "us (simulated)",
        },
    }


def write_chrome_trace(log: EventLog, path: str) -> int:
    """Write the Chrome-trace JSON to ``path``; returns the event count."""
    doc = chrome_trace(log)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"))
    return len(log.events)


# ---------------------------------------------------------------------------
# Terminal views
# ---------------------------------------------------------------------------


def render_utilization(log: EventLog, width: int = 30) -> str:
    """Per-PE utilization profile as a terminal table."""
    profile = utilization_profile(log)
    if not profile:
        return "(no span events recorded)"
    lines = [f"{'track':<16} {'busy (us)':>12} {'util %':>8}  timeline"]
    for (run, pe), row in sorted(profile.items()):
        label = f"run{run}/{_track_name(pe)}"
        bar = "#" * max(1, round(row["utilization"] * width)) if row["busy"] else ""
        lines.append(
            f"{label:<16} {row['busy'] * 1e6:>12.2f} "
            f"{row['utilization'] * 100:>7.1f}%  {bar:<{width}}"
        )
    return "\n".join(lines)
