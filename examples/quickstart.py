#!/usr/bin/env python
"""Quickstart: set up one CkDirect channel and push data through it.

Walks through the exact protocol of the paper's Figure 1:

1. the receiver creates a handle over the *destination view* —
   here, a row in the middle of its matrix (the paper's own motivating
   example: no receiver-side copy, the data lands where it is used);
2. the handle travels to the sender in a regular message;
3. the sender associates its local source buffer (``assoc_local``);
4. ``put`` moves the data one-sidedly; the receiver learns of arrival
   through a plain function callback — no scheduler trip, no
   sender-side synchronization;
5. ``ready`` re-arms the channel for the next iteration (this performs
   no synchronization either — the application's own message flow is
   the synchronization, exactly as the paper prescribes).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ABE, Buffer, Chare, Runtime
from repro import ckdirect as ckd
from repro.charm import CustomMap

ITERATIONS = 3

#: element 0 on the first node, element 1 on the last node
CROSS_NODE = CustomMap(lambda idx, dims, n: 0 if idx[0] == 0 else n - 1)


class Peer(Chare):
    """Element 0 receives; element 1 sends."""

    def __init__(self):
        self.is_receiver = self.thisIndex == (0,)
        self.iteration = 0
        if self.is_receiver:
            # data is consumed straight out of the middle of this matrix
            self.matrix = np.zeros((8, 10))
            # Step 1: handle over the target view.  -1 never appears in
            # our payloads, so it is a safe out-of-band pattern.
            self.handle = ckd.create_handle(
                self,
                Buffer(array=self.matrix[4, :]),  # a row in the middle
                oob=-1.0,
                callback=self.on_row,
                name="quickstart-row",
            )
        else:
            self.row = np.zeros(10)
            self.put_handle = None

    # -- receiver side --------------------------------------------------

    def start(self):
        # Step 2: ship the handle to the sender in an ordinary message.
        self.proxy[1].take_handle(self.handle)

    def on_row(self, _cbdata):
        # Step 4 (receive side): the data is already in matrix[4]; this
        # callback is a plain function call, not an entry method.
        self.iteration += 1
        print(
            f"[t={self.now * 1e6:8.2f}us] receiver: iteration "
            f"{self.iteration}, row = {self.matrix[4, 0]:.0f}..., "
            f"sum = {self.matrix[4].sum():.1f}"
        )
        if self.iteration < ITERATIONS:
            ckd.ready(self.handle)  # Step 5: re-arm, no synchronization
            self.proxy[1].next_round()

    # -- sender side -----------------------------------------------------

    def take_handle(self, handle):
        # Step 3: bind my source buffer to the channel, then fire.
        ckd.assoc_local(self, handle, Buffer(array=self.row))
        self.put_handle = handle
        self.next_round()

    def next_round(self):
        self.iteration += 1
        self.row[:] = float(self.iteration)
        print(f"[t={self.now * 1e6:8.2f}us] sender:   put #{self.iteration}")
        ckd.put(self.put_handle)  # Step 4 (send side): one RDMA write


def main():
    rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
    peers = rt.create_array(Peer, dims=(2,), mapping=CROSS_NODE)
    peers.proxy[0].start()
    rt.run()  # message-driven programs end by falling silent
    print(
        f"done at t={rt.now * 1e6:.2f}us; "
        f"{rt.trace.counter('ckdirect.puts')} puts, "
        f"{rt.trace.counter('charm.msgs_sent')} regular messages"
    )


if __name__ == "__main__":
    main()
