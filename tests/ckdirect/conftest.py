"""Fixtures for the CkDirect tests."""

import pytest

from repro import ABE, SURVEYOR, Runtime
from repro import ckdirect as ckd
from tests.ckdirect.channel_helpers import CROSS, Endpoint


@pytest.fixture(params=["ib", "bgp"])
def machine(request):
    return ABE if request.param == "ib" else SURVEYOR


@pytest.fixture
def channel(machine):
    """A wired channel: element 0 receives, element 1 sends."""
    rt = Runtime(machine, n_pes=2 * machine.cores_per_node)
    arr = rt.create_array(Endpoint, dims=(2,), mapping=CROSS)
    recv, send = arr.element(0), arr.element(1)
    handle = recv.make_handle()
    ckd.assoc_local(send, handle, send.send_buf)
    return rt, arr, recv, send, handle
