"""Shard supervision: crash/hang recovery, degradation, knobs.

The contract: with supervision on (the default), a shard worker that
is SIGKILL'd or wedged mid-run is detected, restarted, and replayed
deterministically — the run's output stays **bit-identical** to a
clean serial run — and once the restart budget is spent the run
degrades to the serial engine, still bit-identical.

SURVEYOR at 16 PEs = 4 nodes (4 cores/node), so ``shards=4`` forks
four real worker processes.
"""

import hashlib

import pytest

from repro.faults import ProcFaultPlan, ProcFaultRule
from repro.network.params import SURVEYOR
from repro.sim.parallel import ParallelEngineError
from repro.resilience.supervisor import (
    resolve_max_restarts,
    resolve_shard_deadline,
    resolve_supervise,
)

CFG = dict(domain=(16, 16, 16), vr=2, iterations=3,
           validate=True, keep_runtime=True)


def _run(shards, **kw):
    from repro.apps.stencil.driver import run_stencil

    return run_stencil(SURVEYOR, 16, shards=shards, **CFG, **kw)


def _digest(result):
    from repro.apps.stencil.driver import gather_grid

    return hashlib.sha256(gather_grid(result).tobytes()).hexdigest()


@pytest.fixture(scope="module")
def baseline():
    """Serial reference digest + event count."""
    r = _run(shards=1)
    return _digest(r), r.events


# ---------------------------------------------------------------------------
# Clean path
# ---------------------------------------------------------------------------


def test_supervised_clean_run_is_bit_identical(baseline):
    digest, events = baseline
    r = _run(shards=4)
    sup = r.runtime.supervision
    assert sup is not None and sup["supervised"]
    assert sup["restarts"] == 0 and not sup["degraded"]
    assert _digest(r) == digest
    assert r.events == events


def test_supervise_off_uses_legacy_topology(baseline, monkeypatch):
    monkeypatch.setenv("REPRO_SUPERVISE", "0")
    digest, events = baseline
    r = _run(shards=4)
    assert r.runtime.supervision is None
    assert _digest(r) == digest
    assert r.events == events


# ---------------------------------------------------------------------------
# Crash recovery (SIGKILL mid-epoch)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["conservative", "optimistic"])
def test_sigkill_shard_recovers_bit_identical(baseline, engine):
    digest, events = baseline
    r = _run(shards=4, engine=engine,
             proc_faults=ProcFaultPlan.named("kill-shard"))
    sup = r.runtime.supervision
    assert sup["restarts"] == 1 and sup["crashes"] == 1
    assert not sup["degraded"]
    assert _digest(r) == digest
    assert r.events == events


def test_kill_during_final_collection_recovers(baseline):
    """A worker killed at its *last* barrier (after `done` is logged)
    is replayed through the whole window stream, final included."""
    digest, events = baseline
    # Round count is deterministic (193 for this config at 4 shards);
    # firing at a barrier near the end exercises the done/final replay.
    plan = ProcFaultPlan("kill-late",
                         (ProcFaultRule("kill", shard=2, at_round=193),))
    r = _run(shards=4, proc_faults=plan)
    sup = r.runtime.supervision
    assert sup["restarts"] == 1, "kill round never reached"
    assert _digest(r) == digest
    assert r.events == events


def test_two_kills_within_budget(baseline):
    digest, events = baseline
    plan = ProcFaultPlan("kill-two", (
        ProcFaultRule("kill", shard=1, at_round=3),
        ProcFaultRule("kill", shard=3, at_round=5),
    ))
    r = _run(shards=4, proc_faults=plan)
    sup = r.runtime.supervision
    assert sup["restarts"] == 2 and sup["crashes"] == 2
    assert not sup["degraded"]
    assert _digest(r) == digest
    assert r.events == events


# ---------------------------------------------------------------------------
# Hang detection
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["conservative", "optimistic"])
def test_hung_shard_detected_and_restarted(baseline, engine, monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_DEADLINE", "1")
    digest, events = baseline
    r = _run(shards=4, engine=engine,
             proc_faults=ProcFaultPlan.named("hang-shard"))
    sup = r.runtime.supervision
    assert sup["hangs"] == 1 and sup["restarts"] == 1
    assert not sup["degraded"]
    assert _digest(r) == digest
    assert r.events == events


def test_slow_worker_is_not_a_false_positive(baseline):
    """A straggler under the deadline must never trip the detector."""
    digest, events = baseline
    r = _run(shards=4, proc_faults=ProcFaultPlan.named("slow-worker"))
    sup = r.runtime.supervision
    assert sup["restarts"] == 0 and sup["hangs"] == 0
    assert _digest(r) == digest
    assert r.events == events


# ---------------------------------------------------------------------------
# Degradation ladder: budget exhausted -> serial, still bit-identical
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("engine", ["conservative", "optimistic"])
def test_restart_budget_degrades_to_serial(baseline, engine, monkeypatch):
    monkeypatch.setenv("REPRO_MAX_SHARD_RESTARTS", "1")
    digest, events = baseline
    plan = ProcFaultPlan("kill-every", (
        ProcFaultRule("kill", shard=1, at_round=3, every_incarnation=True),
    ))
    r = _run(shards=4, engine=engine, proc_faults=plan)
    sup = r.runtime.supervision
    assert sup["degraded"] is True
    assert sup["restarts"] == 1  # budget, then surrender
    assert r.runtime.parallel_rounds is None  # serial path ran
    if engine == "optimistic":
        assert all(v == 0 for v in r.runtime.timewarp_stats.values())
    assert _digest(r) == digest
    assert r.events == events


def test_zero_budget_degrades_on_first_failure(baseline, monkeypatch):
    monkeypatch.setenv("REPRO_MAX_SHARD_RESTARTS", "0")
    digest, events = baseline
    r = _run(shards=4, proc_faults=ProcFaultPlan.named("kill-shard"))
    sup = r.runtime.supervision
    assert sup["degraded"] and sup["restarts"] == 0
    assert _digest(r) == digest
    assert r.events == events


# ---------------------------------------------------------------------------
# Knob resolution
# ---------------------------------------------------------------------------


def test_resolve_supervise_values(monkeypatch):
    assert resolve_supervise() is True  # default on
    for v in ("1", "on", "true", "YES"):
        monkeypatch.setenv("REPRO_SUPERVISE", v)
        assert resolve_supervise() is True
    for v in ("0", "off", "False", "no"):
        monkeypatch.setenv("REPRO_SUPERVISE", v)
        assert resolve_supervise() is False
    monkeypatch.setenv("REPRO_SUPERVISE", "maybe")
    with pytest.raises(ParallelEngineError, match="REPRO_SUPERVISE"):
        resolve_supervise()


def test_resolve_max_restarts(monkeypatch):
    assert resolve_max_restarts() == 2
    monkeypatch.setenv("REPRO_MAX_SHARD_RESTARTS", "5")
    assert resolve_max_restarts() == 5
    monkeypatch.setenv("REPRO_MAX_SHARD_RESTARTS", "-1")
    with pytest.raises(ParallelEngineError, match=">= 0"):
        resolve_max_restarts()
    monkeypatch.setenv("REPRO_MAX_SHARD_RESTARTS", "two")
    with pytest.raises(ParallelEngineError, match="integer"):
        resolve_max_restarts()


def test_resolve_shard_deadline(monkeypatch):
    assert resolve_shard_deadline() == 120.0
    monkeypatch.setenv("REPRO_SHARD_DEADLINE", "2.5")
    assert resolve_shard_deadline() == 2.5
    monkeypatch.setenv("REPRO_SHARD_DEADLINE", "0")
    with pytest.raises(ParallelEngineError, match="> 0"):
        resolve_shard_deadline()
    monkeypatch.setenv("REPRO_SHARD_DEADLINE", "soon")
    with pytest.raises(ParallelEngineError, match="seconds"):
        resolve_shard_deadline()
