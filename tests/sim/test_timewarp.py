"""Tests for the Time Warp optimistic parallel engine.

The contract under test: ``--engine optimistic --shards N`` is
bit-identical to ``--shards 1`` (state, timings, event counts) on
every app and every event-queue implementation, rollbacks actually
happen (the speculation is real, not degenerate), checkpoints restore
exactly (a hypothesis property over capture points), and runs that
cannot shard fall back serially just like the conservative engine.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.charm import Runtime
from repro.network.params import ABE, SURVEYOR
from repro.sim.parallel import ParallelEngineError
from repro.sim.timewarp import (
    ENGINE_CHOICES,
    STAT_KEYS,
    ShardCheckpoint,
    _resolve_cp_events,
    _resolve_horizon,
    resolve_engine,
)

# ---------------------------------------------------------------------------
# Engine-mode resolution
# ---------------------------------------------------------------------------


def test_resolve_engine_default(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    assert resolve_engine() == "conservative"


def test_resolve_engine_argument_wins(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "conservative")
    assert resolve_engine("optimistic") == "optimistic"
    assert resolve_engine("  Optimistic ") == "optimistic"


def test_resolve_engine_env(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "optimistic")
    assert resolve_engine() == "optimistic"
    monkeypatch.setenv("REPRO_ENGINE", "  ")
    assert resolve_engine() == "conservative"


def test_resolve_engine_junk_raises(monkeypatch):
    with pytest.raises(ParallelEngineError, match="engine must be one of"):
        resolve_engine("timewarp")
    monkeypatch.setenv("REPRO_ENGINE", "speculative")
    with pytest.raises(ParallelEngineError, match="REPRO_ENGINE"):
        resolve_engine()


def test_engine_choices_are_stable():
    assert ENGINE_CHOICES == ("conservative", "optimistic")


def test_resolve_horizon_and_cp_events(monkeypatch):
    monkeypatch.delenv("REPRO_TW_HORIZON", raising=False)
    monkeypatch.delenv("REPRO_TW_CPEVENTS", raising=False)
    assert _resolve_horizon() is None
    assert _resolve_cp_events() == 50_000
    monkeypatch.setenv("REPRO_TW_HORIZON", "4")
    monkeypatch.setenv("REPRO_TW_CPEVENTS", "200")
    assert _resolve_horizon() == 4
    assert _resolve_cp_events() == 200
    monkeypatch.setenv("REPRO_TW_HORIZON", "MAX")
    assert _resolve_horizon() == float("inf")
    for var, fn in (("REPRO_TW_HORIZON", _resolve_horizon),
                    ("REPRO_TW_CPEVENTS", _resolve_cp_events)):
        monkeypatch.setenv(var, "0")
        with pytest.raises(ParallelEngineError, match="at least 1"):
            fn()
        monkeypatch.setenv(var, "lots")
        with pytest.raises(ParallelEngineError, match="positive integer"):
            fn()
        monkeypatch.delenv(var)


# ---------------------------------------------------------------------------
# Bit-identity: optimistic shards N == shards 1
# ---------------------------------------------------------------------------


def _stencil(shards, engine=None, machine=ABE, **kw):
    from repro.apps.stencil.driver import gather_grid, run_stencil

    r = run_stencil(machine, 16, domain=(16, 16, 16), vr=2, iterations=3,
                    mode="ckd", validate=True, keep_runtime=True,
                    shards=shards, engine=engine, **kw)
    return r, gather_grid(r)


def _assert_stats_sane(stats):
    assert set(stats) == set(STAT_KEYS)
    assert all(v >= 0 for v in stats.values())
    assert stats["gvt_rounds"] >= 1
    assert stats["antis_received"] <= stats["antis"]


def test_stencil_optimistic_bit_identical():
    one, one_grid = _stencil(1)
    two, two_grid = _stencil(2, engine="optimistic")
    assert two.iter_times == one.iter_times
    assert two.events == one.events
    assert two.runtime.sim.now == one.runtime.sim.now
    assert np.array_equal(two_grid, one_grid)
    _assert_stats_sane(two.runtime.timewarp_stats)


def test_stencil_optimistic_four_shards_on_torus_with_rollbacks(monkeypatch):
    # Surveyor: 4 cores/node, so 16 PEs = 4 real shards.  Run-to-drain
    # speculation (the adaptive default would throttle to the
    # conservative window on cross-shard traffic) makes stragglers —
    # and hence rollbacks and anti-messages — certain: speculation must
    # be exercised, not just tolerated, and repair must still end
    # bit-identical.
    monkeypatch.setenv("REPRO_TW_HORIZON", "max")
    one, one_grid = _stencil(1, machine=SURVEYOR)
    four, four_grid = _stencil(4, engine="optimistic", machine=SURVEYOR)
    assert four.iter_times == one.iter_times
    assert four.events == one.events
    assert np.array_equal(four_grid, one_grid)
    stats = four.runtime.timewarp_stats
    _assert_stats_sane(stats)
    assert stats["rollbacks"] >= 1
    assert stats["events_rolled_back"] >= 1
    assert stats["checkpoints"] >= 1


def test_stencil_optimistic_anti_messages_fire(monkeypatch):
    # The CkDirect variant on the torus sends speculative cross-shard
    # puts that a straggler later invalidates: the divergent sends must
    # be cancelled via anti-messages, and received ones dead-marked.
    # Unbounded speculation makes the divergence certain (the adaptive
    # default may avoid it entirely — that is its job).
    monkeypatch.setenv("REPRO_TW_HORIZON", "max")
    four, _ = _stencil(4, engine="optimistic", machine=SURVEYOR)
    stats = four.runtime.timewarp_stats
    assert stats["antis"] >= 1
    assert stats["antis_received"] >= 1
    assert stats["dedups"] >= 1


@pytest.mark.parametrize("eventq", ["heap", "calendar", "compiled"])
def test_stencil_optimistic_bit_identical_per_eventq(eventq, monkeypatch):
    if eventq == "compiled":
        pytest.importorskip("repro.sim._ceventq")
    monkeypatch.setenv("REPRO_EVENTQ", eventq)
    one, one_grid = _stencil(1, machine=SURVEYOR)
    four, four_grid = _stencil(4, engine="optimistic", machine=SURVEYOR)
    assert four.iter_times == one.iter_times
    assert four.events == one.events
    assert np.array_equal(four_grid, one_grid)


def test_stencil_optimistic_horizon_and_cadence_knobs(monkeypatch):
    one, one_grid = _stencil(1, machine=SURVEYOR)
    monkeypatch.setenv("REPRO_TW_HORIZON", "4")
    bounded, bounded_grid = _stencil(4, engine="optimistic",
                                     machine=SURVEYOR)
    monkeypatch.delenv("REPRO_TW_HORIZON")
    monkeypatch.setenv("REPRO_TW_CPEVENTS", "200")
    fine, fine_grid = _stencil(4, engine="optimistic", machine=SURVEYOR)
    assert bounded.events == one.events
    assert bounded.iter_times == one.iter_times
    assert np.array_equal(bounded_grid, one_grid)
    assert fine.events == one.events
    assert fine.iter_times == one.iter_times
    assert np.array_equal(fine_grid, one_grid)
    # both modes really checkpoint (fixed horizon and adaptive default
    # both follow the event-count cadence)
    assert bounded.runtime.timewarp_stats["checkpoints"] >= 1
    assert fine.runtime.timewarp_stats["checkpoints"] >= 1


def test_matmul_optimistic_bit_identical():
    from repro.apps.matmul.driver import gather_c, run_matmul

    def run(shards, engine=None):
        r = run_matmul(ABE, 16, N=32, c=2, iterations=3, mode="ckd",
                       validate=True, keep_runtime=True, shards=shards,
                       engine=engine)
        return r, gather_c(r)

    one, c_one = run(1)
    two, c_two = run(2, engine="optimistic")
    assert two.iter_times == one.iter_times
    assert two.events == one.events
    assert np.array_equal(c_two, c_one)
    _assert_stats_sane(two.runtime.timewarp_stats)


def test_openatom_optimistic_bit_identical():
    from repro.apps.openatom.driver import abe_2cpn, run_openatom

    def run(shards, engine=None):
        r = run_openatom(abe_2cpn(ABE), 16, mode="ckd", validate=True,
                         keep_runtime=True, shards=shards, engine=engine,
                         nstates=8, nplanes=2, grain=4,
                         points_per_plane=64, iterations=2, rest_rounds=2)
        state = []
        for arr in r.runtime.arrays.values():
            if arr.internal:
                continue
            for idx in sorted(arr.elements):
                elem = arr.elements[idx]
                if getattr(elem, "points", None) is not None:
                    state.append(elem.points)
                elif getattr(elem, "left", None) is not None:
                    state.extend([elem.left, elem.right])
        return r, state

    one, s_one = run(1)
    four, s_four = run(4, engine="optimistic")
    assert four.step_times == one.step_times
    assert four.events == one.events
    assert len(s_four) == len(s_one)
    for a, b in zip(s_four, s_one):
        assert np.array_equal(a, b)
    _assert_stats_sane(four.runtime.timewarp_stats)


# ---------------------------------------------------------------------------
# Serial fallbacks
# ---------------------------------------------------------------------------


def test_optimistic_single_shard_is_serial():
    one, _ = _stencil(1, engine="optimistic")
    stats = one.runtime.timewarp_stats
    assert stats == {k: 0 for k in STAT_KEYS}
    assert one.runtime.shard_cpu_times is not None
    assert len(one.runtime.shard_cpu_times) == 1


def test_optimistic_fault_runs_fall_back_and_stay_identical():
    from repro.apps.stencil.driver import run_stencil

    def run(shards, engine=None):
        return run_stencil(ABE, 16, domain=(16, 16, 16), vr=2,
                           iterations=3, mode="ckd", validate=True,
                           keep_runtime=True, faults="drop",
                           shards=shards, engine=engine)

    one = run(1)
    four = run(4, engine="optimistic")
    # fault injection disables the parallel engine wholesale: the run
    # keeps the legacy serial engine regardless of the requested mode
    assert not one.runtime.fabric._engine
    assert not four.runtime.fabric._engine
    assert four.iter_times == one.iter_times
    assert four.events == one.events


def test_runtime_rejects_bad_engine():
    from repro.charm.runtime import CharmError

    with pytest.raises((ParallelEngineError, CharmError)):
        Runtime(ABE, 16, shards=2, engine="speculative")


def test_tw_static_reduced_state_saving():
    # Attributes named in tw_static are skipped by the snapshot and
    # left alone by the restore: neither rolled back nor deleted.
    from repro.charm.chare import Chare

    class C(Chare):
        tw_static = frozenset({"wiring"})

    c = C.__new__(C)
    c.wiring = [1, 2, 3]
    c.counter = 7
    snap = c.tw_checkpoint()
    assert "wiring" not in {name for name, _ in snap}
    c.wiring.append(4)       # static: survives the restore
    c.counter = 99           # dynamic: rolled back
    c.speculative = "new"    # dynamic, post-snapshot: deleted
    c.tw_restore(snap)
    assert c.wiring == [1, 2, 3, 4]
    assert c.counter == 7
    assert not hasattr(c, "speculative")


# ---------------------------------------------------------------------------
# Checkpoint -> restore round-trips (hypothesis property)
# ---------------------------------------------------------------------------


def _build_stencil(seed):
    from repro.apps.stencil.base import IterationMonitor
    from repro.apps.stencil.decomp import choose_grid
    from repro.apps.stencil.jacobi_ckd import JacobiCkd

    rt = Runtime(ABE, 16)
    domain, iters = (16, 16, 16), 3
    grid = choose_grid(domain, 32)
    monitor = IterationMonitor(rt, None, iters)
    arr = rt.create_array(
        JacobiCkd, dims=grid,
        ctor_args=(domain, grid, iters, True, seed, monitor),
    )
    monitor.proxy = arr.proxy
    arr.proxy.bcast("setup")

    def digest():
        blocks = [arr.elements[i].interior() for i in sorted(arr.elements)]
        return (rt.sim.now, rt.sim.events_processed, tuple(monitor.marks),
                b"".join(b.tobytes() for b in blocks))

    return rt, digest


def _build_matmul(seed):
    from repro.apps.matmul.decomp3d import MatMulSpec
    from repro.apps.matmul.matmul_ckd import MatMulCkd
    from repro.apps.stencil.base import IterationMonitor

    rt = Runtime(ABE, 16)
    spec, iters = MatMulSpec(32, 2), 3
    monitor = IterationMonitor(rt, None, iters)
    arr = rt.create_array(
        MatMulCkd, dims=(2, 2, 2),
        ctor_args=(spec, iters, True, seed, monitor),
    )
    monitor.proxy = arr.proxy
    arr.proxy.bcast("setup")

    def digest():
        blocks = [
            arr.elements[i].C.tobytes()
            for i in sorted(arr.elements) if arr.elements[i].C is not None
        ]
        return (rt.sim.now, rt.sim.events_processed, tuple(monitor.marks),
                b"".join(blocks))

    return rt, digest


def _build_openatom(seed):
    from repro.apps.openatom.config import OpenAtomConfig
    from repro.apps.openatom.driver import OpenAtomMonitor, abe_2cpn
    from repro.apps.openatom.paircalc import Ortho
    from repro.apps.openatom.variants import GSpaceCkd, PairCalcCkd

    rt = Runtime(abe_2cpn(ABE), 16)
    cfg = OpenAtomConfig(nstates=8, nplanes=2, grain=4,
                         points_per_plane=64, iterations=2, rest_rounds=2)
    monitor = OpenAtomMonitor(rt, cfg.iterations)
    gs = rt.create_array(GSpaceCkd, dims=(cfg.nstates, cfg.nplanes),
                         ctor_args=(cfg, monitor))
    pc = rt.create_array(PairCalcCkd,
                         dims=(cfg.nblocks, cfg.nblocks, cfg.nplanes),
                         ctor_args=(cfg, monitor))
    ortho = rt.create_array(Ortho, dims=(1,), ctor_args=(cfg, pc.id))
    monitor.gs_proxy = gs.proxy
    monitor.pc_proxy = pc.proxy
    for elem in gs.elements.values():
        elem._pc_array_id = pc.id
    for elem in pc.elements.values():
        elem._gs_array_id = gs.id
        elem._ortho_array_id = ortho.id
    pc.proxy.bcast("setup")
    gs.proxy.bcast("setup")

    def digest():
        state = []
        for arr in (gs, pc):
            for idx in sorted(arr.elements):
                elem = arr.elements[idx]
                if getattr(elem, "points", None) is not None:
                    state.append(elem.points.tobytes())
                elif getattr(elem, "left", None) is not None:
                    state.append(elem.left.tobytes())
                    state.append(elem.right.tobytes())
        return (rt.sim.now, rt.sim.events_processed, tuple(monitor.marks),
                b"".join(state))

    return rt, digest


_BUILDERS = {
    "stencil": _build_stencil,
    "matmul": _build_matmul,
    "openatom": _build_openatom,
}


@settings(max_examples=8, deadline=None)
@given(app=st.sampled_from(sorted(_BUILDERS)),
       frac=st.floats(0.05, 0.95),
       seed=st.integers(0, 3))
def test_checkpoint_restore_replay_is_bit_exact(app, frac, seed):
    """Restore-then-replay from any mid-run capture point reproduces
    the uninterrupted run's final digest exactly — the property every
    rollback in the optimistic engine rests on."""
    build = _BUILDERS[app]

    # Reference: run to completion untouched.
    rt, digest = build(seed)
    rt.sim.run()
    want = digest()
    total = rt.sim.events_processed

    # Capture mid-run, finish, rewind, finish again.
    rt, digest = build(seed)
    rt.sim.run(max_events=max(1, int(total * frac)))
    owned = frozenset(range(rt.n_pes))
    cp = ShardCheckpoint.capture(rt, owned, 0, 0)
    rt.sim.run()
    first = digest()
    assert first == want

    cp.restore(rt)
    rt.sim.run()
    assert digest() == want


def test_checkpoint_restore_midflight_handles_and_reductions():
    """A capture taken between barriers (reductions in flight, CkDirect
    puts pending) restores the handle registry and reduction nodes so a
    replay is indistinguishable from the first pass."""
    rt, digest = _build_stencil(20090922)
    rt.sim.run(max_events=700)  # mid-iteration: traffic in flight
    owned = frozenset(range(rt.n_pes))
    cp = ShardCheckpoint.capture(rt, owned, 0, 0)
    handles_before = dict(rt._handles)
    rt.sim.run()
    want = digest()
    cp.restore(rt)
    assert rt._handles == handles_before
    rt.sim.run()
    assert digest() == want
