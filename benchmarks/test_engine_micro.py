"""Microbenchmark: DES hot-path cost per event across queue variants.

The simulator's ``run()`` loop is the constant factor every artifact
in this repo pays — tables, figures, and ablations are all millions of
``(pop, fire, schedule)`` cycles.  This benchmark pins three engines
against each other:

* the *legacy* replica — the engine as it stood before the tuple-heap
  optimization (``Event`` objects on the heap compared through
  ``Event.__lt__`` → ``sort_key()`` tuple allocation, kwargs dict
  always allocated);
* the *heap* reference — today's ``Simulator``;
* the *calendar* queue — :class:`repro.sim.eventq.CalendarSimulator`
  (pure Python) and, when built, the compiled core
  (``--eventq compiled``).

The workload is the simulator's real usage profile: several
self-rescheduling event chains progressing concurrently in virtual
time (what a multi-PE run generates — each PE is its own
pingpong-style chain), a fan-out/fan-in burst (multicast-style), and a
fraction of cancelled timeouts (rendezvous-style).

Methodology: each engine is timed over ``ROUNDS`` full workload runs
and scored by the **median**, not the best — a single timed run (or a
best-of) tracks scheduler tail luck, which made the old guard flaky
on loaded CI machines.  The assertions are the issue's acceptance
bars: ≥15% below legacy for the heap (re-baselined against the median
methodology), ≥1.3× heap for the pure-Python calendar, ≥2.5× heap for
the compiled core.  Measured on the CI container these land at
~40-45%, ~1.4×, and ~5.5-6× respectively.
"""

from __future__ import annotations

import heapq
import statistics
import time

from conftest import record_stage, save_report
from repro.sim.engine import Simulator
from repro.sim.eventq import (
    CalendarSimulator,
    CompiledSimulator,
    compiled_available,
)

import pytest

ROUNDS = 5  # median-of to shed scheduler noise (>= 3 required)


# ---------------------------------------------------------------------------
# Legacy engine replica (the pre-optimization hot path, verbatim semantics)
# ---------------------------------------------------------------------------


class _LegacyEvent:
    __slots__ = ("time", "priority", "seq", "fn", "args", "kwargs", "_cancelled")

    def __init__(self, time, priority, seq, fn, args, kwargs):
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.kwargs = kwargs or {}
        self._cancelled = False

    def sort_key(self):
        return (self.time, self.priority, self.seq)

    def __lt__(self, other):
        return self.sort_key() < other.sort_key()

    def cancel(self):
        self._cancelled = True

    def fire(self):
        if not self._cancelled:
            self.fn(*self.args, **self.kwargs)


class _LegacySimulator:
    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._seq = 0
        self._events_processed = 0

    @property
    def now(self):
        return self._now

    @property
    def events_processed(self):
        return self._events_processed

    def schedule(self, delay, fn, *args, priority=0, **kwargs):
        return self.at(self._now + delay, fn, *args, priority=priority, **kwargs)

    def at(self, time, fn, *args, priority=0, **kwargs):
        ev = _LegacyEvent(time, priority, self._seq, fn, args, kwargs)
        self._seq += 1
        heapq.heappush(self._heap, ev)
        return ev

    def run(self):
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev._cancelled:
                continue
            self._now = ev.time
            self._events_processed += 1
            ev.fire()


# ---------------------------------------------------------------------------
# Workload (engine-agnostic: all simulators expose schedule/cancel/run)
# ---------------------------------------------------------------------------

CHAIN_EVENTS = 60_000   # total hops, split across the lanes
CHAIN_LANES = 8         # concurrent chains ≈ concurrent PEs in a run
FAN_BATCHES = 400
FAN_WIDTH = 64
CANCEL_EVERY = 8


def _workload(sim) -> int:
    """The usage profile the artifacts generate; returns events fired."""
    per_lane = CHAIN_EVENTS // CHAIN_LANES
    state = [0] * CHAIN_LANES

    def hop(lane):
        state[lane] += 1
        if state[lane] < per_lane:
            sim.schedule(1e-6, hop, lane)

    def leaf():
        pass

    def burst(i):
        cancelled = []
        for k in range(FAN_WIDTH):
            ev = sim.schedule(1e-6 + k * 1e-9, leaf)
            if k % CANCEL_EVERY == 0:
                cancelled.append(ev)
        for ev in cancelled:  # rendezvous timeouts that did not fire
            ev.cancel()
        if i + 1 < FAN_BATCHES:
            sim.schedule(2e-6, burst, i + 1)

    for lane in range(CHAIN_LANES):
        sim.schedule(1e-6 + lane * 1e-8, hop, lane)
    sim.schedule(1e-6, burst, 0)
    sim.run()
    return sim.events_processed


def _time_us_per_event(sim_factory) -> float:
    """Median µs/event over ROUNDS full workload runs."""
    samples = []
    for _ in range(ROUNDS):
        sim = sim_factory()
        t0 = time.perf_counter()
        fired = _workload(sim)
        dt = time.perf_counter() - t0
        samples.append(dt / fired * 1e6)
    return statistics.median(samples)


def _report_and_record():
    """Time every available engine once; cache for all assertions."""
    rows = {
        "legacy": _time_us_per_event(_LegacySimulator),
        "heap": _time_us_per_event(Simulator),
        "calendar": _time_us_per_event(CalendarSimulator),
    }
    if compiled_available():
        rows["calendar-c"] = _time_us_per_event(CompiledSimulator)
    return rows


_rows_cache = {}


def _rows():
    if not _rows_cache:
        _rows_cache.update(_report_and_record())
        lines = [
            "Engine microbench: us per event (median of %d rounds)" % ROUNDS,
            "=" * 54,
        ]
        heap_us = _rows_cache["heap"]
        for name, us in _rows_cache.items():
            rel = (f"  ({heap_us / us:.2f}x vs heap)"
                   if name not in ("heap", "legacy") else "")
            lines.append(f"{name:<26}: {us:.3f} us/event{rel}")
        improvement = ((_rows_cache["legacy"] - heap_us)
                       / _rows_cache["legacy"] * 100.0)
        lines.append(f"heap vs legacy improvement: {improvement:.1f}%")
        save_report("engine_micro", "\n".join(lines))
        record_stage("engine_micro", {
            "rounds": ROUNDS,
            "us_per_event": {k: round(v, 4) for k, v in _rows_cache.items()},
            "calendar_speedup_vs_heap": round(
                heap_us / _rows_cache["calendar"], 3),
            "compiled_speedup_vs_heap": (
                round(heap_us / _rows_cache["calendar-c"], 3)
                if "calendar-c" in _rows_cache else None),
        })
    return _rows_cache


def test_hot_path_speedup(benchmark):
    rows = benchmark.pedantic(_rows, rounds=1, iterations=1)
    improvement = (rows["legacy"] - rows["heap"]) / rows["legacy"] * 100.0
    assert improvement >= 15.0, (
        f"hot-path optimization regressed: only {improvement:.1f}% "
        f"({rows['legacy']:.3f} -> {rows['heap']:.3f} us/event)"
    )


def test_calendar_speedup():
    rows = _rows()
    speedup = rows["heap"] / rows["calendar"]
    assert speedup >= 1.3, (
        f"pure-Python calendar queue below the 1.3x bar: {speedup:.2f}x "
        f"({rows['heap']:.3f} -> {rows['calendar']:.3f} us/event)"
    )


@pytest.mark.skipif(not compiled_available(),
                    reason="compiled core not built")
def test_compiled_speedup():
    rows = _rows()
    speedup = rows["heap"] / rows["calendar-c"]
    assert speedup >= 2.5, (
        f"compiled calendar core below the 2.5x bar: {speedup:.2f}x "
        f"({rows['heap']:.3f} -> {rows['calendar-c']:.3f} us/event)"
    )


def test_event_order_unchanged():
    """Every engine fires the identical event sequence (the queue swap
    must be timing-only)."""
    def trace(sim):
        order = []
        def hop(tag):
            order.append((round(sim.now * 1e9), tag))
            if len(order) < 500:
                sim.schedule(1e-6, hop, len(order))
        cancelled = sim.schedule(5e-6, hop, "never")
        sim.schedule(1e-6, hop, "a")
        sim.schedule(1e-6, hop, "b", priority=-1)
        cancelled.cancel()
        sim.run()
        return order

    ref = trace(Simulator())
    assert ref == trace(_LegacySimulator())
    assert ref == trace(CalendarSimulator())
    if compiled_available():
        assert ref == trace(CompiledSimulator())
