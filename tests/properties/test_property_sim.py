"""Property-based tests for the DES core: event ordering is a total
order respecting time, priority, and FIFO among ties; the clock never
goes backwards."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator

delays = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e-3, allow_nan=False),
        st.integers(min_value=-2, max_value=2),
    ),
    min_size=1,
    max_size=60,
)


@given(delays)
@settings(max_examples=60, deadline=None)
def test_events_fire_in_total_order(specs):
    sim = Simulator()
    fired = []
    for i, (delay, prio) in enumerate(specs):
        sim.schedule(delay, lambda i=i: fired.append(i), priority=prio)
    sim.run()
    assert len(fired) == len(specs)
    keys = [(specs[i][0], specs[i][1], i) for i in fired]
    assert keys == sorted(keys)


@given(delays)
@settings(max_examples=40, deadline=None)
def test_clock_monotone(specs):
    sim = Simulator()
    stamps = []
    for delay, prio in specs:
        sim.schedule(delay, lambda: stamps.append(sim.now), priority=prio)
    sim.run()
    assert stamps == sorted(stamps)
    assert sim.now == max(d for d, _ in specs)


@given(delays, st.integers(min_value=1, max_value=59))
@settings(max_examples=40, deadline=None)
def test_run_until_is_prefix_of_full_run(specs, cut_idx):
    def schedule_all(sim, out):
        for i, (delay, prio) in enumerate(specs):
            sim.schedule(delay, lambda i=i: out.append(i), priority=prio)

    full_sim, full = Simulator(), []
    schedule_all(full_sim, full)
    full_sim.run()

    cut = sorted(d for d, _ in specs)[min(cut_idx, len(specs)) - 1]
    part_sim, part = Simulator(), []
    schedule_all(part_sim, part)
    part_sim.run(until=cut)
    part_sim.run()
    assert part == full


@given(st.lists(st.floats(min_value=0, max_value=1e-3), min_size=2, max_size=30),
       st.data())
@settings(max_examples=40, deadline=None)
def test_cancellation_removes_exactly_that_event(delays_list, data):
    sim = Simulator()
    fired = []
    events = [
        sim.schedule(d, lambda i=i: fired.append(i))
        for i, d in enumerate(delays_list)
    ]
    victim = data.draw(st.integers(min_value=0, max_value=len(events) - 1))
    events[victim].cancel()
    sim.run()
    assert victim not in fired
    assert sorted(fired + [victim]) == list(range(len(delays_list)))
