"""The pingpong microbenchmark (paper §3, Tables 1 and 2).

Round-trip time between two endpoints on *different nodes*, averaged
over many iterations, for each communication stack the paper measures:

* ``charm_pingpong``    — default Charm++ messages (envelope + scheduler),
* ``ckdirect_pingpong`` — CkDirect puts (Figure 1 protocol, including
  the handle exchange during setup),
* ``mpi_pingpong``      — two-sided MPI for a given flavor,
* ``mpi_put_pingpong``  — one-sided ``MPI_Put`` (amortized PSCW).

Message size means *user data bytes*, exactly as the paper's tables
count it (the Charm++ header is extra, on the wire only).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..charm import Chare, CkCallback, CustomMap, Payload, Runtime
from ..mpi import MPIWorld, Win
from ..network.params import MachineParams
from ..util.buffers import Buffer
from .. import ckdirect as ckd

#: Map element 0 to the first PE of node 0 and element 1 to the first
#: PE of the last node — the cross-node placement the paper measures.
def _cross_node_map(idx, dims, n_pes):
    return 0 if idx[0] == 0 else n_pes - 1


CROSS_NODE = CustomMap(_cross_node_map)

#: Out-of-band value for real-buffer runs (buffers carry indices >= 0).
OOB = -1.0


@dataclass
class PingpongResult:
    """One pingpong measurement."""

    stack: str
    machine: str
    nbytes: int
    iterations: int
    rtt: float  # seconds, averaged per iteration
    events: int = 0  # simulator events fired by the run

    @property
    def rtt_us(self) -> float:
        """Round-trip time in microseconds."""
        return self.rtt * 1e6


# ---------------------------------------------------------------------------
# Charm++ messages
# ---------------------------------------------------------------------------


class _MsgPinger(Chare):
    """Two-element chare array bouncing one pre-built message."""

    def __init__(self, iterations: int, nbytes: int) -> None:
        self.iterations = iterations
        self.nbytes = nbytes
        self.count = 0
        self.t0 = 0.0

    def start(self) -> None:
        """Entry method: begin the exchange."""
        self.t0 = self.now
        # pack=False: the paper's pingpong reuses one message buffer.
        self.proxy[1].ping(Payload.virtual(self.nbytes))

    def ping(self, payload: Payload) -> None:
        """Entry method: bounce the ball back."""
        self.proxy[0].pong(Payload.virtual(self.nbytes))

    def pong(self, payload: Payload) -> None:
        """Entry method: count a round trip, continue or finish."""
        self.count += 1
        if self.count < self.iterations:
            self.proxy[1].ping(Payload.virtual(self.nbytes))
        else:
            self.rt.result_time = (self.now - self.t0) / self.iterations


def charm_pingpong(
    machine: MachineParams, nbytes: int, iterations: int = 200
) -> PingpongResult:
    """Default Charm++ message pingpong across two nodes."""
    rt = Runtime(machine, n_pes=2 * machine.cores_per_node)
    arr = rt.create_array(
        _MsgPinger, dims=(2,), ctor_args=(iterations, nbytes), mapping=CROSS_NODE
    )
    arr.proxy[0].start()
    rt.run()
    return PingpongResult("charm", machine.name, nbytes, iterations, rt.result_time,
                          events=rt.sim.events_processed)


# ---------------------------------------------------------------------------
# CkDirect
# ---------------------------------------------------------------------------


class _CkdPinger(Chare):
    """Figure 1 in miniature: the receiver creates the handle and sends
    it to the sender, which associates its local buffer; thereafter
    the endpoints bounce puts with no per-message synchronization."""

    def __init__(self, iterations: int, nbytes: int, real_buffers: bool) -> None:
        self.iterations = iterations
        self.nbytes = nbytes
        self.count = 0
        self.t0 = 0.0
        self.peer_handle: Optional[ckd.CkDirectHandle] = None
        if real_buffers:
            n = max(1, nbytes // 8)
            self.recv_buf = Buffer(array=np.zeros(n))
            self.send_buf = Buffer(array=np.arange(1, n + 1, dtype=float))
        else:
            self.recv_buf = Buffer(nbytes=nbytes)
            self.send_buf = Buffer(nbytes=nbytes)
        # Step 1 of Figure 1: receiver-side handle creation.
        self.handle = ckd.create_handle(
            self, self.recv_buf, OOB, self.on_data, name=f"pp{self.thisIndex[0]}"
        )

    def setup(self) -> None:
        # Step 2: ship the handle to the peer in a regular message.
        """Entry method: wire channels / join the setup barrier."""
        peer = 1 - self.thisIndex[0]
        self.proxy[peer].recv_handle(self.handle)

    def recv_handle(self, handle: ckd.CkDirectHandle) -> None:
        # Sender side: associate the local buffer with the channel.
        """Entry method: receive the peer's channel handle (Figure 1 step 2)."""
        ckd.assoc_local(self, handle, self.send_buf)
        self.peer_handle = handle
        self.contribute(callback=CkCallback.bcast(self.proxy.array, "go"))

    def go(self) -> None:
        """Entry method: start this endpoint's role."""
        if self.thisIndex[0] == 0:
            self.t0 = self.now
            ckd.put(self.peer_handle)

    def on_data(self, _cbdata) -> None:
        """CkDirect completion callback."""
        ckd.ready(self.handle)
        if self.thisIndex[0] == 1:
            ckd.put(self.peer_handle)
            return
        self.count += 1
        if self.count < self.iterations:
            ckd.put(self.peer_handle)
        else:
            self.rt.result_time = (self.now - self.t0) / self.iterations


def ckdirect_pingpong(
    machine: MachineParams,
    nbytes: int,
    iterations: int = 200,
    real_buffers: bool = False,
    faults: Optional[str] = None,
    fault_seed: int = 0x0FA11,
) -> PingpongResult:
    """CkDirect pingpong across two nodes.

    With ``real_buffers=True`` actual numpy data crosses the channels
    and the out-of-band sentinel mechanics run for real (used by the
    validation tests; timing is identical either way).  ``faults``
    names a built-in fault profile: puts then run over an imperfect
    fabric with the reliability layer armed.
    """
    from ..faults import FaultPlan

    plan = FaultPlan.named(faults, fault_seed) if faults is not None else None
    rt = Runtime(machine, n_pes=2 * machine.cores_per_node, fault_plan=plan)
    arr = rt.create_array(
        _CkdPinger,
        dims=(2,),
        ctor_args=(iterations, nbytes, real_buffers),
        mapping=CROSS_NODE,
    )
    arr.proxy.bcast("setup")
    rt.run()
    return PingpongResult("ckdirect", machine.name, nbytes, iterations, rt.result_time,
                          events=rt.sim.events_processed)


# ---------------------------------------------------------------------------
# MPI
# ---------------------------------------------------------------------------


def mpi_pingpong(
    machine: MachineParams,
    nbytes: int,
    iterations: int = 200,
    flavor: Optional[str] = None,
) -> PingpongResult:
    """Two-sided MPI pingpong (receives pre-posted, the usual style)."""
    world = MPIWorld(machine, 2, flavor=flavor)
    r0, r1 = world.ranks
    state = {"count": 0, "rtt": 0.0}

    def r0_got_pong(_arr) -> None:
        state["count"] += 1
        if state["count"] < iterations:
            r0.irecv(r0_got_pong, src=1)
            r0.isend(1, nbytes)
        else:
            state["rtt"] = r0.cursor / iterations

    def r1_got_ping(_arr) -> None:
        r1.irecv(r1_got_ping, src=0)
        r1.isend(0, nbytes)

    r0.irecv(r0_got_pong, src=1)
    r1.irecv(r1_got_ping, src=0)
    r0.isend(1, nbytes)
    world.run()
    return PingpongResult(
        f"mpi:{world.params.name}", machine.name, nbytes, iterations, state["rtt"],
        events=world.sim.events_processed,
    )


def mpi_put_pingpong(
    machine: MachineParams,
    nbytes: int,
    iterations: int = 200,
    flavor: Optional[str] = None,
) -> PingpongResult:
    """One-sided ``MPI_Put`` pingpong (PSCW completion amortized, the
    way the paper's MVAPICH-Put / BG-P MPI-Put rows measured it)."""
    world = MPIWorld(machine, 2, flavor=flavor)
    win = Win(world)
    r0, r1 = world.ranks
    state = {"count": 0, "rtt": 0.0}

    def at_r1() -> None:
        win.put(r1, 0, nbytes, on_complete=at_r0)

    def at_r0() -> None:
        state["count"] += 1
        if state["count"] < iterations:
            win.put(r0, 1, nbytes, on_complete=at_r1)
        else:
            state["rtt"] = world.sim.now / iterations

    win.put(r0, 1, nbytes, on_complete=at_r1)
    world.run()
    return PingpongResult(
        f"mpi-put:{world.params.name}", machine.name, nbytes, iterations, state["rtt"],
        events=world.sim.events_processed,
    )


# ---------------------------------------------------------------------------
# Sweep-point adapter
# ---------------------------------------------------------------------------

STACKS = {
    "charm": charm_pingpong,
    "ckdirect": ckdirect_pingpong,
    "mpi": mpi_pingpong,
    "mpi-put": mpi_put_pingpong,
}


def pingpong_point(
    machine: MachineParams,
    stack: str,
    size: int,
    iterations: int = 200,
    flavor: Optional[str] = None,
) -> dict:
    """Picklable sweep-point adapter: one pingpong measurement.

    ``flavor`` only applies to the MPI stacks (it selects the
    simulated MPI implementation's parameter set).
    """
    if stack not in STACKS:
        raise ValueError(f"stack must be one of {sorted(STACKS)}, got {stack!r}")
    kwargs = {"flavor": flavor} if stack.startswith("mpi") and flavor else {}
    r = STACKS[stack](machine, size, iterations, **kwargs)
    return {"rtt_us": r.rtt_us, "events": r.events}
