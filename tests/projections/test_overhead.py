"""The when-disabled guarantee: no tracer, no events, no state.

The hooks all follow ``tr = <owner>.tracer; if tr is not None: ...``,
so a disabled run must leave zero tracing state anywhere — these tests
pin the observable half of that contract (the wall-clock half is the
acceptance run against the pre-instrumentation baseline).
"""

from repro.apps.pingpong import ckdirect_pingpong, mpi_pingpong
from repro.charm.runtime import Runtime
from repro.mpi.sim_mpi import MPIWorld
from repro.network.params import ABE, SURVEYOR
from repro.projections.eventlog import EventLog, current_tracer, tracing


def test_no_ambient_tracer_by_default():
    assert current_tracer() is None


def test_untraced_runtime_holds_no_tracer():
    rt = Runtime(ABE, 4)
    assert rt.tracer is None
    assert rt.fabric.tracer is None
    world = MPIWorld(ABE, 2)
    assert world.tracer is None
    assert world.fabric.tracer is None


def test_untraced_run_appends_to_no_log():
    stale = EventLog()
    with tracing(stale):
        pass  # installed and removed before any run exists
    ckdirect_pingpong(ABE, 1000, iterations=5)
    ckdirect_pingpong(SURVEYOR, 1000, iterations=5)
    mpi_pingpong(ABE, 1000, iterations=5)
    assert len(stale) == 0


def test_untraced_objects_carry_no_eids():
    """Message/handle trace fields stay None on untraced runs (the
    hooks never touched them)."""
    rt = ckdirect_pingpong(ABE, 1000, iterations=3)
    assert rt is not None  # the run completed without a tracer


def test_results_identical_with_and_without_tracing():
    """Tracing is observational: simulated results must not change."""
    base = ckdirect_pingpong(ABE, 30_000, iterations=20)
    with tracing():
        traced = ckdirect_pingpong(ABE, 30_000, iterations=20)
    assert traced.rtt == base.rtt
