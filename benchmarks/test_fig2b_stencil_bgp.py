"""Figure 2(b) — stencil improvement on Blue Gene/P.

Same domain and virtualization as 2(a), 64 → 4096 PEs (the 2048/4096
points run only with ``REPRO_FULL_SCALE=1``; pure-Python event counts
make them minutes-long).  §4.1 claims: gains become more significant
at higher processor counts; smaller than Infiniband at equal P.  The
paper's unexplained dip at 2048 PEs is *not* asserted — the authors
themselves could not explain it.
"""

import pytest

from conftest import save_report
from repro.bench import run_fig2a, run_fig2b, shapes


@pytest.fixture(scope="module")
def fig2b(holder={}):
    if "r" not in holder:
        holder["r"] = run_fig2b()
    return holder["r"]


def test_fig2b_benchmark(benchmark, fig2b):
    result = benchmark.pedantic(lambda: fig2b, rounds=1, iterations=1)
    save_report("fig2b_stencil_bgp", result["report"])
    test_gains_grow_with_pes(fig2b)
    test_ckdirect_never_loses(fig2b)
    test_bgp_gains_below_ib_at_equal_p(fig2b)


def test_gains_grow_with_pes(fig2b):
    shapes.assert_gains_grow_with_pes(fig2b["pes"], fig2b["gains"])


def test_ckdirect_never_loses(fig2b):
    shapes.assert_all_nonnegative(
        fig2b["pes"], fig2b["gains"], slack_pct=0.5, label="fig2b"
    )


def test_bgp_gains_below_ib_at_equal_p(fig2b):
    """"We see higher gains on Infiniband, since that implementation
    ... uses true one-sided synchronization free communication, unlike
    BG/P" (§4.1) — compare at the shared PE counts."""
    ib = run_fig2a(pes=[p for p in fig2b["pes"] if p in (64, 128, 256)])
    for p, g_ib in zip(ib["pes"], ib["gains"]):
        g_bgp = fig2b["gains"][fig2b["pes"].index(p)]
        assert g_bgp < g_ib + 1.0, (
            f"BG/P gain ({g_bgp:.2f}%) not below IB gain ({g_ib:.2f}%) at P={p}"
        )
