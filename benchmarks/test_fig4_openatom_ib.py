"""Figure 4 — OpenAtom step times on Abe (2 cores/node).

§5.2 claims: ≈4 % full-application improvement on Abe; the
PairCalculator-only runs reach ≈14 %.  (Our mini-app is scaled down —
64 states instead of 1024 — with the compute-to-communication ratio
restored; see repro.apps.openatom.config.)
"""

import numpy as np
import pytest

from conftest import save_report
from repro.bench import run_fig4, shapes


@pytest.fixture(scope="module")
def fig4(holder={}):
    if "r" not in holder:
        holder["r"] = run_fig4()
    return holder["r"]


def test_fig4_benchmark(benchmark, fig4):
    result = benchmark.pedantic(lambda: fig4, rounds=1, iterations=1)
    save_report("fig4_openatom_abe", result["report"])
    test_ckdirect_wins_full(fig4)
    test_ckdirect_wins_pc_only(fig4)
    test_pc_only_gain_exceeds_full(fig4)
    test_gain_bands(fig4)


def test_ckdirect_wins_full(fig4):
    shapes.assert_all_nonnegative(
        fig4["full"]["pes"], fig4["full"]["gains"], label="fig4/full"
    )


def test_ckdirect_wins_pc_only(fig4):
    shapes.assert_all_nonnegative(
        fig4["pc_only"]["pes"], fig4["pc_only"]["gains"], label="fig4/pc"
    )


def test_pc_only_gain_exceeds_full(fig4):
    """Isolating the optimized phase shows a larger improvement —
    Figure 4's (a) vs (b) structure."""
    for p, gf, gp in zip(
        fig4["full"]["pes"], fig4["full"]["gains"], fig4["pc_only"]["gains"]
    ):
        assert gp > gf, f"PC-only gain ({gp:.2f}%) <= full gain ({gf:.2f}%) at P={p}"


def test_gain_bands(fig4):
    """Full-app mean gain in a band around the paper's ~4 %; PC-only
    around ~14 % (generous bands: the mini-app is a scale-down)."""
    full_mean = float(np.mean(fig4["full"]["gains"]))
    pc_mean = float(np.mean(fig4["pc_only"]["gains"]))
    assert 2.0 <= full_mean <= 12.0, f"full-app mean gain {full_mean:.2f}%"
    assert 8.0 <= pc_mean <= 22.0, f"PC-only mean gain {pc_mean:.2f}%"
