"""Tests for the OpenAtom PairCalculator mini-app."""

import numpy as np
import pytest

from repro import ABE, SURVEYOR
from repro.apps.openatom import (
    OpenAtomConfig,
    abe_2cpn,
    run_openatom,
)

SMALL = dict(nstates=16, nplanes=2, grain=4, points_per_plane=128,
             iterations=2, rest_rounds=2)


def test_config_validation():
    with pytest.raises(ValueError):
        OpenAtomConfig(nstates=10, grain=3)
    with pytest.raises(ValueError):
        OpenAtomConfig(polling="sometimes")


def test_config_derived_quantities():
    cfg = OpenAtomConfig(nstates=64, nplanes=8, grain=8, points_per_plane=2048)
    assert cfg.nblocks == 8
    assert cfg.points_bytes == 2048 * 16
    assert cfg.gs_count == 512
    assert cfg.pc_count == 512
    assert cfg.channels_total == 2 * 8 * 512


def test_abe_2cpn():
    m = abe_2cpn(ABE)
    assert m.cores_per_node == 2
    assert abe_2cpn(SURVEYOR).cores_per_node == SURVEYOR.cores_per_node


@pytest.mark.parametrize("machine", [ABE, SURVEYOR], ids=["ib", "bgp"])
@pytest.mark.parametrize("mode", ["msg", "ckd"])
def test_runs_to_completion(machine, mode):
    r = run_openatom(machine, 8, mode=mode, **SMALL)
    assert len(r.step_times) == 2
    assert all(t > 0 for t in r.step_times)


@pytest.mark.parametrize("mode", ["msg", "ckd"])
def test_validation_mode_lands_points_in_operands(mode):
    """Every PC operand column must equal the owning GS's points after
    the forward phase (checked at end of run: points were damped once
    per step after the last put, so compare against the value at put
    time — reconstruct by undoing the final correction)."""
    r = run_openatom(ABE, 4, mode=mode, validate=True, keep_runtime=True,
                     nstates=8, nplanes=2, grain=4, points_per_plane=64,
                     iterations=1, rest_rounds=0)
    rt = r.runtime
    arrays = [a for a in rt.arrays.values() if not a.internal]
    gs_arr = next(a for a in arrays if len(a.dims) == 2 and a.dims[0] == 8)
    pc_arr = next(a for a in arrays if len(a.dims) == 3)
    cfg = r.cfg
    from repro.apps.openatom.config import OPENATOM_OOB

    for (i, j, p), pc in pc_arr.elements.items():
        for off in range(cfg.grain):
            left_state = i * cfg.grain + off
            gs = gs_arr.elements[(left_state, p)]
            # gs.points was updated once after the PC consumed them:
            # points_now = 0.5 * points_at_put + 0.5
            reconstructed = (gs.points - 0.5) * 2.0
            # all but the trailing element hold the delivered points;
            # the trailing slot was re-stamped by CkDirect_readyMark
            # after consumption (the §2.1 contract: the armed buffer's
            # final double word belongs to the RTS)
            assert np.allclose(pc.left[:-1, off], reconstructed[:-1]), (i, j, p, off)
            if mode == "ckd":
                assert pc.left[-1, off] == OPENATOM_OOB
            else:
                assert pc.left[-1, off] == pytest.approx(reconstructed[-1])


def test_pc_only_faster_than_full():
    full = run_openatom(ABE, 8, mode="msg", **SMALL)
    pc = run_openatom(ABE, 8, mode="msg", pc_only=True, **SMALL)
    assert pc.mean_step_time < full.mean_step_time


def test_naive_polling_slower_on_ib():
    kw = dict(nstates=32, nplanes=4, grain=8, points_per_plane=512,
              iterations=2, rest_rounds=12)
    ph = run_openatom(abe_2cpn(ABE), 16, mode="ckd", polling="phased", **kw)
    nv = run_openatom(abe_2cpn(ABE), 16, mode="ckd", polling="naive", **kw)
    assert nv.mean_step_time > ph.mean_step_time


def test_polling_mode_irrelevant_on_bgp():
    """BG/P never polls; both disciplines must time identically."""
    ph = run_openatom(SURVEYOR, 8, mode="ckd", polling="phased", **SMALL)
    nv = run_openatom(SURVEYOR, 8, mode="ckd", polling="naive", **SMALL)
    assert ph.mean_step_time == pytest.approx(nv.mean_step_time)


def test_channel_count_matches_formula():
    r = run_openatom(ABE, 4, mode="ckd", keep_runtime=True, **SMALL)
    cfg = r.cfg
    assert (
        r.runtime.trace.counter("ckdirect.handles_created")
        == cfg.channels_total
    )


def test_invalid_mode():
    with pytest.raises(ValueError, match="mode"):
        run_openatom(ABE, 2, mode="huh", **SMALL)


def test_ckd_full_variant_runs_and_improves():
    """The ckd-full mode (backward path channelized too — the paper's
    §5.2 anticipation) runs correctly and is at least as fast as
    forward-only CkDirect."""
    kw = dict(nstates=16, nplanes=2, grain=4, points_per_plane=512,
              iterations=2, rest_rounds=4)
    fwd = run_openatom(abe_2cpn(ABE), 8, mode="ckd", **kw)
    full = run_openatom(abe_2cpn(ABE), 8, mode="ckd-full", **kw)
    assert full.mean_step_time <= fwd.mean_step_time * 1.01


def test_ckd_full_validates():
    r = run_openatom(ABE, 4, mode="ckd-full", validate=True,
                     nstates=8, nplanes=2, grain=4, points_per_plane=64,
                     iterations=2, rest_rounds=0)
    assert len(r.step_times) == 2
