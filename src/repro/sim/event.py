"""Event primitives for the discrete-event simulation core.

An :class:`Event` is a scheduled callback.  Events are ordered by
``(time, priority, seq)`` where ``seq`` is a monotonically increasing
sequence number assigned by the :class:`~repro.sim.engine.Simulator`.
Breaking time ties by sequence number makes every simulation run fully
deterministic: two events scheduled for the same instant always fire in
the order they were scheduled.

Hot-path note
-------------
The simulator's heap stores plain ``(time, priority, seq, event)``
tuples, not the events themselves, so heap sift comparisons run as
C-level tuple comparisons instead of dispatching :meth:`Event.__lt__`
per probe.  ``seq`` is unique, so two heap entries never compare equal
through the first three fields and the trailing ``Event`` is never
compared.  :meth:`__lt__` is kept for direct ``Event`` comparisons in
user/test code.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from .engine import Simulator


class Event:
    """A pending callback in simulated time.

    Users normally do not construct events directly; they receive them
    from :meth:`Simulator.schedule` / :meth:`Simulator.at` and may hold
    on to them only to :meth:`cancel` them.

    Attributes
    ----------
    time:
        Absolute simulated time (seconds) at which the event fires.
    priority:
        Secondary ordering key.  Lower priorities fire first among
        events scheduled for the same instant.  The runtime uses this
        sparingly (e.g. to ensure data delivery precedes notification).
    seq:
        Tie-breaking sequence number; assigned by the simulator.
    """

    __slots__ = (
        "time", "priority", "seq", "fn", "args", "kwargs",
        "_cancelled", "_popped", "_sim",
    )

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: Optional[dict],
        sim: Optional["Simulator"] = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        # None (not {}) when there are no kwargs: lets the engine's run
        # loop skip the ``**`` unpacking entirely on the common path.
        self.kwargs = kwargs if kwargs else None
        self._cancelled = False
        self._popped = False  # True once removed from the heap
        self._sim = sim

    # Ordering ---------------------------------------------------------

    def sort_key(self) -> tuple:
        """The (time, priority, seq) ordering tuple."""
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()

    # Lifecycle --------------------------------------------------------

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped from the heap.

        Cancelling an already-fired event is a harmless no-op.  The
        owning simulator is notified so it can keep an exact count of
        cancelled-but-still-heaped events (for ``pending_active`` and
        lazy heap compaction).
        """
        if self._cancelled:
            return
        self._cancelled = True
        if not self._popped and self._sim is not None:
            self._sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        """True once cancel() was called."""
        return self._cancelled

    def fire(self) -> None:
        """Invoke the callback unless cancelled."""
        if not self._cancelled:
            if self.kwargs is None:
                self.fn(*self.args)
            else:
                self.fn(*self.args, **self.kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        flag = " CANCELLED" if self._cancelled else ""
        return f"<Event t={self.time:.9f} prio={self.priority} seq={self.seq} {name}{flag}>"
