"""Experiment runners: one function per table / figure / ablation.

Each runner regenerates its artifact on the simulated machines, prints
the same rows/series the paper reports (side by side with the paper's
printed values where they exist), and returns the structured results
the benchmark suite asserts shapes on.

PE counts default to a laptop-friendly subset of the paper's sweeps;
set ``REPRO_FULL_SCALE=1`` to run the full ranges (the BG/P 4096-PE
points take a few minutes each in pure Python).
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.matmul import matmul_pair
from ..apps.openatom import abe_2cpn, openatom_pair, run_openatom
from ..apps.pingpong import (
    charm_pingpong,
    ckdirect_pingpong,
    mpi_pingpong,
    mpi_put_pingpong,
)
from ..apps.stencil.driver import stencil_improvement
from ..network.params import ABE, SURVEYOR, T3, MachineParams
from ..util.stats import percent_improvement
from . import paper_data
from .report import render_series, render_table


def full_scale() -> bool:
    """True when REPRO_FULL_SCALE requests the paper's full PE ranges."""
    return os.environ.get("REPRO_FULL_SCALE", "0") not in ("0", "", "false")


# ---------------------------------------------------------------------------
# Tables 1 and 2 (pingpong)
# ---------------------------------------------------------------------------


def run_table1(
    sizes: Optional[Sequence[int]] = None, iterations: int = 100
) -> Dict:
    """Table 1: pingpong RTT on Infiniband for all five stacks."""
    sizes = list(sizes if sizes is not None else paper_data.PINGPONG_SIZES)
    measured = {
        "Default CHARM++": [charm_pingpong(ABE, s, iterations).rtt_us for s in sizes],
        "CkDirect CHARM++": [
            ckdirect_pingpong(ABE, s, iterations).rtt_us for s in sizes
        ],
        "MPICH-VMI": [
            mpi_pingpong(ABE, s, iterations, flavor="MPICH-VMI").rtt_us for s in sizes
        ],
        "MVAPICH": [
            mpi_pingpong(ABE, s, iterations, flavor="MVAPICH").rtt_us for s in sizes
        ],
        "MVAPICH-Put": [
            mpi_put_pingpong(ABE, s, iterations, flavor="MVAPICH").rtt_us
            for s in sizes
        ],
    }
    paper = paper_data.TABLE1_RTT_US if sizes == paper_data.PINGPONG_SIZES else None
    report = render_table(
        "Table 1: pingpong round-trip time, Infiniband (Abe)",
        sizes, measured, paper,
    )
    return {"sizes": sizes, "measured": measured, "paper": paper, "report": report}


def run_table2(
    sizes: Optional[Sequence[int]] = None, iterations: int = 100
) -> Dict:
    """Table 2: pingpong RTT on Blue Gene/P for all four stacks."""
    sizes = list(sizes if sizes is not None else paper_data.PINGPONG_SIZES)
    measured = {
        "Default CHARM++": [
            charm_pingpong(SURVEYOR, s, iterations).rtt_us for s in sizes
        ],
        "CkDirect CHARM++": [
            ckdirect_pingpong(SURVEYOR, s, iterations).rtt_us for s in sizes
        ],
        "MPI": [
            mpi_pingpong(SURVEYOR, s, iterations).rtt_us for s in sizes
        ],
        "MPI-Put": [
            mpi_put_pingpong(SURVEYOR, s, iterations).rtt_us for s in sizes
        ],
    }
    paper = paper_data.TABLE2_RTT_US if sizes == paper_data.PINGPONG_SIZES else None
    report = render_table(
        "Table 2: pingpong round-trip time, Blue Gene/P (Surveyor)",
        sizes, measured, paper,
    )
    return {"sizes": sizes, "measured": measured, "paper": paper, "report": report}


# ---------------------------------------------------------------------------
# Figure 2 (stencil)
# ---------------------------------------------------------------------------


def run_fig2a(
    pes: Optional[Sequence[int]] = None, iterations: int = 4
) -> Dict:
    """Figure 2(a): stencil % improvement on Infiniband (T3)."""
    pes = list(pes if pes is not None else (32, 64, 128, 256))
    gains, msg_ms, ckd_ms = [], [], []
    for p in pes:
        g, m, c = stencil_improvement(T3, p, iterations=iterations)
        gains.append(g)
        msg_ms.append(m.mean_iter_time * 1e3)
        ckd_ms.append(c.mean_iter_time * 1e3)
    report = render_series(
        "Figure 2(a): Jacobi 1024x1024x512, VR 8 — Infiniband (T3)",
        "PEs", pes,
        {"msg iter (ms)": msg_ms, "ckd iter (ms)": ckd_ms, "improvement %": gains},
        unit="ms / %", claim=paper_data.FIGURE_CLAIMS["fig2a"],
    )
    return {"pes": pes, "gains": gains, "msg_ms": msg_ms, "ckd_ms": ckd_ms,
            "report": report}


def run_fig2b(
    pes: Optional[Sequence[int]] = None, iterations: int = 3
) -> Dict:
    """Figure 2(b): stencil % improvement on Blue Gene/P."""
    default = (64, 128, 256, 512, 1024, 2048, 4096) if full_scale() else (64, 128, 256, 512)
    pes = list(pes if pes is not None else default)
    gains, msg_ms, ckd_ms = [], [], []
    for p in pes:
        g, m, c = stencil_improvement(SURVEYOR, p, iterations=iterations)
        gains.append(g)
        msg_ms.append(m.mean_iter_time * 1e3)
        ckd_ms.append(c.mean_iter_time * 1e3)
    report = render_series(
        "Figure 2(b): Jacobi 1024x1024x512, VR 8 — Blue Gene/P",
        "PEs", pes,
        {"msg iter (ms)": msg_ms, "ckd iter (ms)": ckd_ms, "improvement %": gains},
        unit="ms / %", claim=paper_data.FIGURE_CLAIMS["fig2b"],
    )
    return {"pes": pes, "gains": gains, "msg_ms": msg_ms, "ckd_ms": ckd_ms,
            "report": report}


# ---------------------------------------------------------------------------
# Figure 3 (matmul)
# ---------------------------------------------------------------------------


def run_fig3(
    machine: MachineParams,
    pes: Optional[Sequence[int]] = None,
    iterations: int = 2,
) -> Dict:
    """Figure 3: matmul execution time versus PE count, one machine."""
    if pes is None:
        if machine.kind == "bgp":
            pes = (256, 512, 1024, 2048, 4096) if full_scale() else (64, 256, 1024)
        else:
            pes = (16, 64, 256)
    pes = list(pes)
    msg_ms, ckd_ms, gains = [], [], []
    for p in pes:
        m, c = matmul_pair(machine, p, iterations=iterations)
        msg_ms.append(m.mean_iter_time * 1e3)
        ckd_ms.append(c.mean_iter_time * 1e3)
        gains.append(percent_improvement(m.mean_iter_time, c.mean_iter_time))
    report = render_series(
        f"Figure 3: MatMul 2048x2048 — {machine.name}",
        "PEs", pes,
        {"msg iter (ms)": msg_ms, "ckd iter (ms)": ckd_ms, "improvement %": gains},
        unit="ms / %", claim=paper_data.FIGURE_CLAIMS["fig3"],
    )
    return {"pes": pes, "gains": gains, "msg_ms": msg_ms, "ckd_ms": ckd_ms,
            "report": report}


# ---------------------------------------------------------------------------
# Figures 4 and 5 (OpenAtom)
# ---------------------------------------------------------------------------


def run_openatom_figure(
    machine: MachineParams,
    pes: Sequence[int],
    pc_only: bool,
    label: str,
    claim_key: str,
    **cfg_overrides,
) -> Dict:
    """Shared sweep runner for the Figure 4/5 panels."""
    msg_ms, ckd_ms, gains = [], [], []
    for p in pes:
        m, c = openatom_pair(machine, p, pc_only=pc_only, **cfg_overrides)
        msg_ms.append(m.mean_step_time * 1e3)
        ckd_ms.append(c.mean_step_time * 1e3)
        gains.append(percent_improvement(m.mean_step_time, c.mean_step_time))
    report = render_series(
        label, "PEs", list(pes),
        {"msg step (ms)": msg_ms, "ckd step (ms)": ckd_ms, "improvement %": gains},
        unit="ms / %", claim=paper_data.FIGURE_CLAIMS[claim_key],
    )
    return {"pes": list(pes), "gains": gains, "msg_ms": msg_ms, "ckd_ms": ckd_ms,
            "report": report}


def run_fig4(pes: Optional[Sequence[int]] = None) -> Dict:
    """Figure 4: OpenAtom step time on Abe (2 cores/node): (a) full
    application, (b) PairCalculator-only."""
    pes = list(pes if pes is not None else (16, 32, 64))
    abe2 = abe_2cpn(ABE)
    full = run_openatom_figure(
        abe2, pes, False, "Figure 4(a): OpenAtom w256M-like — Abe, full step",
        "fig4",
    )
    pc = run_openatom_figure(
        abe2, pes, True, "Figure 4(b): OpenAtom w256M-like — Abe, PC-only",
        "fig4",
    )
    return {"full": full, "pc_only": pc,
            "report": full["report"] + "\n\n" + pc["report"]}


def run_fig5(pes: Optional[Sequence[int]] = None) -> Dict:
    """Figure 5: OpenAtom step time on Blue Gene/P: (a) full, (b) PC-only."""
    default = (64, 128, 256, 512) if full_scale() else (64, 128, 256)
    pes = list(pes if pes is not None else default)
    full = run_openatom_figure(
        SURVEYOR, pes, False, "Figure 5(a): OpenAtom w256M-like — BG/P, full step",
        "fig5",
    )
    pc = run_openatom_figure(
        SURVEYOR, pes, True, "Figure 5(b): OpenAtom w256M-like — BG/P, PC-only",
        "fig5",
    )
    return {"full": full, "pc_only": pc,
            "report": full["report"] + "\n\n" + pc["report"]}


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md A1-A3)
# ---------------------------------------------------------------------------


def run_polling_ablation(n_pes: int = 64) -> Dict:
    """A1 — §5.2: naive ``ready`` everywhere versus the ReadyMark /
    ReadyPollQ phase-confined polling, versus plain messages."""
    abe2 = abe_2cpn(ABE)
    msg = run_openatom(abe2, n_pes, mode="msg").mean_step_time * 1e3
    phased = run_openatom(abe2, n_pes, mode="ckd", polling="phased").mean_step_time * 1e3
    naive = run_openatom(abe2, n_pes, mode="ckd", polling="naive").mean_step_time * 1e3
    report = render_series(
        "Ablation A1: polling discipline (OpenAtom, Abe)",
        "variant", ["msg", "ckd-naive", "ckd-phased"],
        {"step (ms)": [msg, naive, phased]},
        unit="ms", claim=paper_data.FIGURE_CLAIMS["sec5.2"],
    )
    return {"msg_ms": msg, "naive_ms": naive, "phased_ms": phased, "report": report}


def run_protocol_ablation(
    sizes: Sequence[int] = (10_000, 30_000, 70_000, 200_000),
    iterations: int = 100,
) -> Dict:
    """A2 — §3: force each two-sided protocol across sizes to expose
    the crossover structure: packetization's per-byte overhead loses to
    rendezvous's fixed handshake+registration as messages grow."""
    from ..charm import Runtime
    from ..apps.pingpong import CROSS_NODE, _MsgPinger

    results: Dict[str, List[float]] = {"packet": [], "rendezvous": []}
    for proto in results:
        for nbytes in sizes:
            rt = Runtime(ABE, n_pes=2 * ABE.cores_per_node)
            rt.fabric.force_protocol(proto)
            arr = rt.create_array(
                _MsgPinger, dims=(2,), ctor_args=(iterations, nbytes),
                mapping=CROSS_NODE,
            )
            arr.proxy[0].start()
            rt.run()
            results[proto].append(rt.result_time * 1e6)
    report = render_series(
        "Ablation A2: forced two-sided protocol vs message size (Abe)",
        "size (B)", list(sizes),
        {k: v for k, v in results.items()},
        unit="us RTT",
        claim="Default Charm++ switches packet->rendezvous between 20KB "
              "and 30KB; rendezvous wins decisively as size grows "
              "(Table 1 discussion).",
    )
    return {"sizes": list(sizes), "rtt_us": results, "report": report}


def run_vr_ablation(
    n_pes: int = 64, ratios: Sequence[int] = (1, 2, 4, 8, 16),
    iterations: int = 3,
) -> Dict:
    """A4 — §4.1's virtualization observations: "the program benefited
    greatly from processor virtualization", best execution near VR 8,
    and "greater percentage gains at finer granularities" (the message
    version pays per-message overheads that grow with the chare count;
    CkDirect does not)."""
    from ..apps.stencil.driver import run_stencil

    msg_ms, ckd_ms, gains = [], [], []
    for vr in ratios:
        m = run_stencil(T3, n_pes, vr=vr, iterations=iterations, mode="msg")
        c = run_stencil(T3, n_pes, vr=vr, iterations=iterations, mode="ckd")
        msg_ms.append(m.mean_iter_time * 1e3)
        ckd_ms.append(c.mean_iter_time * 1e3)
        gains.append(percent_improvement(m.mean_iter_time, c.mean_iter_time))
    report = render_series(
        f"Ablation A4: virtualization ratio (stencil, T3, {n_pes} PEs)",
        "chares/PE", list(ratios),
        {"msg iter (ms)": msg_ms, "ckd iter (ms)": ckd_ms, "improvement %": gains},
        unit="ms / %",
        claim="Virtualization overlaps communication with computation; "
              "CkDirect keeps the benefit at fine granularity where the "
              "message version's scheduling overheads bite (§4.1).",
    )
    return {"ratios": list(ratios), "msg_ms": msg_ms, "ckd_ms": ckd_ms,
            "gains": gains, "report": report}


def run_backward_path_ablation(n_pes: int = 32) -> Dict:
    """A5 — §5.2's anticipation: "further improvements in OpenAtom's
    performance when the CkDirect optimization is integrated into other
    phases".  Compares messages, forward-only CkDirect (the paper's
    implementation), and CkDirect in the backward return path too."""
    abe2 = abe_2cpn(ABE)
    rows = {
        "msg": run_openatom(abe2, n_pes, mode="msg").mean_step_time * 1e3,
        "ckd (paper)": run_openatom(abe2, n_pes, mode="ckd").mean_step_time * 1e3,
        "ckd-full (both paths)": run_openatom(
            abe2, n_pes, mode="ckd-full"
        ).mean_step_time * 1e3,
    }
    report = render_series(
        f"Ablation A5: CkDirect in the backward path too (OpenAtom, Abe, {n_pes} PEs)",
        "variant", list(rows),
        {"step (ms)": list(rows.values())},
        unit="ms",
        claim="'We anticipate further improvements ... when the CkDirect "
              "optimization is integrated into other phases' (§5.2).",
    )
    return {"step_ms": rows, "report": report}


def run_mpi_sync_ablation(nbytes: int = 10_000, epochs: int = 50) -> Dict:
    """A3 — §2.3: cost of completing one put under each MPI
    synchronization scheme (fence / PSCW / lock-unlock), versus a bare
    CkDirect put+detect.  Reproduces the related-work argument that
    every MPI scheme drags synchronization the application did not
    need."""
    from ..mpi import MPIWorld, Win

    def fence_loop() -> float:
        world = MPIWorld(ABE, 2, flavor="MVAPICH")
        win = Win(world)
        r0, r1 = world.ranks
        state = {"n": 0}

        def one_epoch():
            if state["n"] >= epochs:
                return
            state["n"] += 1
            win.put_raw(r0, 1, nbytes)
            done = {"c": 0}
            def after_fence():
                done["c"] += 1
                if done["c"] == 2:
                    one_epoch()
            win.fence(r0, after_fence)
            win.fence(r1, after_fence)

        win.fence(r0, lambda: None)
        win.fence(r1, one_epoch)
        world.run()
        return world.sim.now / epochs * 1e6

    def pscw_loop() -> float:
        world = MPIWorld(ABE, 2, flavor="MVAPICH")
        win = Win(world)
        r0, r1 = world.ranks
        state = {"n": 0}

        def one_epoch():
            if state["n"] >= epochs:
                return
            state["n"] += 1
            win.post(r1, [0])
            win.wait(r1, one_epoch)
            def started():
                win.put_raw(r0, 1, nbytes)
                win.complete(r0, 1)
            win.start(r0, started)

        one_epoch()
        world.run()
        return world.sim.now / epochs * 1e6

    def lock_loop() -> float:
        world = MPIWorld(ABE, 2, flavor="MVAPICH")
        win = Win(world)
        r0, r1 = world.ranks
        state = {"n": 0}

        def one_epoch():
            if state["n"] >= epochs:
                return
            state["n"] += 1
            def locked():
                win.put_raw(r0, 1, nbytes)
                win.unlock(r0, 1, one_epoch)
            win.lock(r0, 1, locked)

        one_epoch()
        world.run()
        return world.sim.now / epochs * 1e6

    ckd = ckdirect_pingpong(ABE, nbytes, iterations=epochs).rtt_us / 2.0
    results = {
        "fence": fence_loop(),
        "pscw": pscw_loop(),
        "lock-unlock": lock_loop(),
        "ckdirect (one-way)": ckd,
    }
    report = render_series(
        f"Ablation A3: one {nbytes}B put per epoch under each MPI sync scheme",
        "scheme", list(results.keys()),
        {"epoch time (us)": list(results.values())},
        unit="us",
        claim="MPI one-sided completion drags synchronization the "
              "application's own structure already provides (§2.3).",
    )
    return {"nbytes": nbytes, "epoch_us": results, "report": report}
