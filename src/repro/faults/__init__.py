"""Deterministic fault injection + the reliability layer's knobs.

The paper's CkDirect trusts the fabric completely: a put is a bare RDMA
write and completion is *inferred* from the out-of-band sentinel — no
ack, no timeout, no retry (§2.1).  This package supplies the imperfect
fabric that design must eventually face (:class:`FaultPlan`,
:class:`FaultInjector`) and the tuning block for the reliability
machinery that tolerates it (:class:`ReliabilityParams`; the machinery
itself lives in :mod:`repro.ckdirect.api` and
:mod:`repro.charm.scheduler`).

Install both by constructing the runtime with a plan::

    rt = Runtime(ABE, 16, fault_plan=FaultPlan.named("drop"))

``repro chaos`` runs the paper's applications under every built-in
profile and asserts their results remain bit-identical.

Beyond the simulated fabric, the **proc scope** injects *real* faults
against the execution infrastructure: :class:`ProcFaultPlan` rules
SIGKILL, wedge, or slow a shard worker process at an epoch barrier
(realized in-worker by :class:`ProcFaultInjector`), and the
``corrupt-object`` profile bit-flips a stored serve result.  Driven by
``repro chaos --proc``; recovery is the job of
:mod:`repro.resilience` (shard supervision) and the self-healing
:class:`~repro.serve.store.ResultStore`.
"""

from .injector import FaultInjector, ProcFaultInjector
from .plan import (
    PROC_PROFILES,
    PROFILES,
    FaultConfigError,
    FaultPlan,
    FaultRule,
    ProcFaultPlan,
    ProcFaultRule,
    ReliabilityParams,
    parse_proc_profiles,
    parse_profiles,
)

__all__ = [
    "FaultConfigError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "PROC_PROFILES",
    "PROFILES",
    "ProcFaultInjector",
    "ProcFaultPlan",
    "ProcFaultRule",
    "ReliabilityParams",
    "parse_proc_profiles",
    "parse_profiles",
]
