"""Tests for the ``repro profile`` artifact and its reconciliation."""

import pytest

from repro.network.params import ABE, SURVEYOR
from repro.projections.eventlog import EventLog
from repro.projections.profile import (
    ProfileError,
    reconcile,
    render_profile,
    run_profile,
)


def test_pingpong_profile_reconciles():
    result = run_profile(app="pingpong", machine=ABE, stack="ckdirect",
                         size=2000, iterations=10)
    rows = result["reconciliation"]
    assert rows, "no reconcilable categories"
    for row in rows:
        assert row["ok"], (
            f"{row['label']}: timeline={row['timeline']} vs "
            f"{row['counter_name']}={row['counter']}"
        )


def test_profile_report_sections():
    result = run_profile(app="pingpong", machine=ABE, stack="charm",
                         size=1000, iterations=5)
    report = result["report"]
    assert "profile: pingpong/charm on Abe" in report
    assert "reconciliation vs Trace counters" in report
    assert "critical path:" in report
    assert "ckdirect" not in result["categories"]  # charm stack has no puts


def test_profile_result_keys():
    result = run_profile(app="pingpong", machine=SURVEYOR, stack="ckdirect",
                         size=1000, iterations=5)
    assert result["machine"] == "Surveyor"
    assert result["log"].events
    assert result["critical_path"]["events"] > 1
    assert result["utilization"]


def test_mpi_profile_reconciles():
    result = run_profile(app="pingpong", machine=ABE, stack="mpi",
                         size=1000, iterations=5)
    labels = {row["label"] for row in result["reconciliation"]}
    assert {"mpi sends", "mpi recvs"} <= labels
    assert all(row["ok"] for row in result["reconciliation"])


def test_stencil_profile_runs():
    result = run_profile(app="stencil", machine=ABE, stack="ckdirect",
                         iterations=1, n_pes=8)
    assert all(row["ok"] for row in result["reconciliation"])


def test_unknown_app_rejected():
    with pytest.raises(ProfileError):
        run_profile(app="nbody")


def test_unsupported_stack_rejected():
    with pytest.raises(ProfileError):
        run_profile(app="stencil", stack="mpi-put")


def test_reconcile_empty_log():
    assert reconcile(EventLog()) == []


def test_render_profile_empty_log():
    out = render_profile(EventLog(), headline="empty")
    assert "empty" in out
    assert "0 timeline events" in out
