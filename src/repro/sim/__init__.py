"""Discrete-event simulation core.

Public surface:

* :class:`Simulator` — the event loop and clock (heap reference).
* :func:`make_simulator` — build on the selected event-queue
  implementation (``--eventq``/``REPRO_EVENTQ``; see
  :mod:`repro.sim.eventq`).
* :class:`Event` — a cancellable scheduled callback.
* :class:`Entity` — base class for things living in simulated time.
* :class:`Trace`, :class:`RunningStats` — statistics collection.
* :mod:`repro.sim.rng` — deterministic random streams.
"""

from .engine import SimulationError, Simulator
from .entity import Entity
from .event import Event
from .eventq import (
    EVENTQ_CHOICES,
    CalendarSimulator,
    compiled_available,
    eventq_name,
    make_simulator,
    resolve_eventq,
)
from .rng import DEFAULT_SEED, make_rng, split_seeds, substream
from .trace import RunningStats, Sample, Trace

__all__ = [
    "Simulator",
    "SimulationError",
    "Event",
    "Entity",
    "Trace",
    "RunningStats",
    "Sample",
    "make_rng",
    "substream",
    "split_seeds",
    "DEFAULT_SEED",
    "make_simulator",
    "resolve_eventq",
    "eventq_name",
    "compiled_available",
    "CalendarSimulator",
    "EVENTQ_CHOICES",
]
