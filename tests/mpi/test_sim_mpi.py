"""Unit tests for the simulated MPI world: sends, receives,
eager/rendezvous, unexpected messages, flavors."""

import pytest

from repro import ABE, SURVEYOR
from repro.mpi import ANY_SOURCE, MPIError, MPIWorld
from repro.mpi.flavors import regime_for, resolve_flavor, uses_rendezvous


def test_world_construction_validates():
    with pytest.raises(MPIError):
        MPIWorld(ABE, 0)
    with pytest.raises(MPIError):
        MPIWorld(ABE, 2, placement="weird")


def test_spread_placement_cross_node():
    world = MPIWorld(ABE, 2, placement="spread")
    assert not world.fabric.topology.same_node(
        world.ranks[0].pe, world.ranks[1].pe
    )


def test_packed_placement_same_node():
    world = MPIWorld(ABE, 2, placement="packed")
    assert world.fabric.topology.same_node(
        world.ranks[0].pe, world.ranks[1].pe
    )


def test_unknown_flavor_rejected():
    with pytest.raises(MPIError, match="no MPI flavor"):
        MPIWorld(ABE, 2, flavor="OpenMPI")


def test_simple_send_recv():
    world = MPIWorld(ABE, 2)
    got = []
    world.ranks[1].irecv(lambda a: got.append((a.src, a.nbytes)), src=0)
    world.ranks[0].isend(1, 100)
    world.run()
    assert got == [(0, 100)]


def test_send_to_invalid_rank():
    world = MPIWorld(ABE, 2)
    with pytest.raises(MPIError, match="out of range"):
        world.ranks[0].isend(5, 100)


def test_unexpected_message_costs_extra():
    """A message arriving before its receive is posted pays the
    bounce-buffer copy when finally matched."""
    nbytes = 8000

    def completion(pre_post: bool) -> float:
        world = MPIWorld(ABE, 2)
        done = []
        # the rank cursor includes the matching + copy charges
        cb = lambda a: done.append(world.ranks[1].cursor)
        if pre_post:
            world.ranks[1].irecv(cb, src=0)
            world.ranks[0].isend(1, nbytes)
        else:
            world.ranks[0].isend(1, nbytes)
            world.run()  # message arrives unexpected
            world.ranks[1].irecv(cb, src=0)
        world.run()
        return done[0]

    t_pre = completion(True)
    t_late = completion(False)
    assert t_late > t_pre


def test_rendezvous_waits_for_recv():
    """Above the rendezvous threshold, data only moves once the receive
    posts; the completion reflects the post time."""
    world = MPIWorld(ABE, 2, flavor="MVAPICH")
    nbytes = 100_000
    assert uses_rendezvous(world.params, nbytes)
    got = []
    world.ranks[0].isend(1, nbytes)
    world.run()  # RTS announced, no data yet
    t_announce = world.sim.now
    world.ranks[1].irecv(lambda a: got.append(world.sim.now), src=0)
    world.run()
    assert got and got[0] > t_announce


def test_wildcard_recv():
    world = MPIWorld(ABE, 3)
    got = []
    world.ranks[2].irecv(lambda a: got.append(a.src), src=ANY_SOURCE)
    world.ranks[2].irecv(lambda a: got.append(a.src), src=ANY_SOURCE)
    world.ranks[0].isend(2, 10)
    world.ranks[1].isend(2, 10)
    world.run()
    assert sorted(got) == [0, 1]


def test_many_ranks_ring():
    n = 8
    world = MPIWorld(ABE, n)
    got = []
    for r in world.ranks:
        r.irecv(lambda a, rank=r.rank: got.append(rank), src=(r.rank - 1) % n)
    for r in world.ranks:
        r.isend((r.rank + 1) % n, 64)
    world.run()
    assert sorted(got) == list(range(n))


def test_regime_selection():
    p = resolve_flavor(ABE, "MVAPICH")
    i, fixed, beta, last = regime_for(p, 100)
    assert i == 0 and not last
    i, fixed, beta, last = regime_for(p, 100_000)
    assert last


def test_vmi_has_three_regimes():
    p = resolve_flavor(ABE, "MPICH-VMI")
    assert len(p.regimes) == 3
    assert regime_for(p, 50_000)[0] == 1


def test_bgp_default_flavor():
    world = MPIWorld(SURVEYOR, 2)
    assert world.params.name == "IBM-MPI"
    got = []
    world.ranks[1].irecv(lambda a: got.append(a.nbytes), src=0)
    world.ranks[0].isend(1, 5000)
    world.run()
    assert got == [5000]


def test_charge_outside_context_rejected():
    world = MPIWorld(ABE, 2)
    with pytest.raises(MPIError):
        world.ranks[0].charge(1e-6)


def test_rank_cursor_advances_with_work():
    world = MPIWorld(ABE, 2)
    done = []
    world.ranks[1].irecv(lambda a: done.append(world.ranks[1].cursor), src=0)
    world.ranks[0].isend(1, 1000)
    world.run()
    assert done[0] > 0
    assert world.ranks[1].busy_until >= done[0]
