#!/usr/bin/env python
"""3D Jacobi stencil: messages versus CkDirect (paper §4.1, Figure 2).

Runs a small validated stencil (checking bit-exactness against the
sequential reference), then a paper-scale performance comparison on
the simulated NCSA T3 Infiniband cluster, printing the per-iteration
times and the percentage improvement — the quantity Figure 2 plots.

Run:  python examples/stencil_3d.py            (quick, ~1 minute)
      STENCIL_PES="32 64 128 256" python examples/stencil_3d.py
"""

import os

import numpy as np

from repro import T3
from repro.apps.stencil import (
    block_initial,
    gather_grid,
    jacobi_reference,
    run_stencil,
    stencil_improvement,
)


def validate() -> None:
    """Both implementations must match the sequential solver exactly."""
    domain = (16, 16, 8)
    print(f"validating on a {domain} domain ...")
    for mode in ("msg", "ckd"):
        res = run_stencil(T3, n_pes=4, domain=domain, vr=2, iterations=4,
                          mode=mode, validate=True, keep_runtime=True)
        init = np.zeros(domain)
        gx, gy, gz = res.grid
        bx, by, bz = domain[0] // gx, domain[1] // gy, domain[2] // gz
        for i in range(gx):
            for j in range(gy):
                for k in range(gz):
                    init[i * bx:(i + 1) * bx, j * by:(j + 1) * by,
                         k * bz:(k + 1) * bz] = block_initial(
                        (i, j, k), (bx, by, bz), 20090922)
        ref = jacobi_reference(init, 4)
        err = np.abs(gather_grid(res) - ref).max()
        print(f"  {mode}: max |error| vs sequential reference = {err:g}")
        assert err == 0.0


def performance() -> None:
    """The Figure 2(a) experiment at selected PE counts."""
    pes = [int(p) for p in os.environ.get("STENCIL_PES", "32 64 128").split()]
    print("\n1024x1024x512 Jacobi, virtualization ratio 8, simulated T3:")
    print(f"{'PEs':>6} {'msg iter (ms)':>14} {'ckd iter (ms)':>14} {'gain %':>8}")
    for p in pes:
        gain, msg, ckd = stencil_improvement(T3, p, iterations=4)
        print(f"{p:>6} {msg.mean_iter_time * 1e3:>14.2f} "
              f"{ckd.mean_iter_time * 1e3:>14.2f} {gain:>8.2f}")
    print("\npaper (Figure 2a): gains grow with PE count, ~12% at 256 PEs")


if __name__ == "__main__":
    validate()
    performance()
