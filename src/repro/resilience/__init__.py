"""Process-level fault tolerance for the execution infrastructure.

PR 3 made the *simulated* fabric fault-tolerant; this package does the
same for the *real* processes that run a simulation:

* :mod:`.supervisor` — coordinator-side shard supervision for the
  ``--shards N`` engines: barrier-piggybacked heartbeats, crash/hang
  detection, deterministic restart by message-log replay, and graceful
  degradation to the serial engine after ``REPRO_MAX_SHARD_RESTARTS``
  (bit-identical output on every rung of the ladder).
* :mod:`.integrity` — per-object content checksums for the serve
  :class:`~repro.serve.store.ResultStore`'s self-healing read path
  (verify on read, quarantine corruption, recompute as a miss).

Exercised end-to-end by ``repro chaos --proc`` (see
:mod:`repro.faults` for the process-scope fault profiles).
"""

from .integrity import (
    SIDECAR_SUFFIX,
    checksum,
    read_sidecar,
    sidecar_path,
    write_sidecar,
)
from .supervisor import (
    RestartBudgetExceeded,
    ShardSupervisor,
    resolve_max_restarts,
    resolve_shard_deadline,
    resolve_supervise,
    supervise_conservative,
    supervise_timewarp,
)

__all__ = [
    "RestartBudgetExceeded",
    "SIDECAR_SUFFIX",
    "ShardSupervisor",
    "checksum",
    "read_sidecar",
    "resolve_max_restarts",
    "resolve_shard_deadline",
    "resolve_supervise",
    "sidecar_path",
    "supervise_conservative",
    "supervise_timewarp",
    "write_sidecar",
]
