"""Unit tests for OpenAtom mini-app internals: PC operand geometry,
phase counters, Ortho flow, monitor behaviour."""

import numpy as np
import pytest

from repro import ABE, Runtime
from repro.apps.openatom import OpenAtomConfig, run_openatom
from repro.apps.openatom.driver import OpenAtomMonitor

SMALL = dict(nstates=8, nplanes=2, grain=4, points_per_plane=64,
             iterations=2, rest_rounds=1)


def _run(mode="ckd", **over):
    kw = dict(SMALL)
    kw.update(over)
    return run_openatom(ABE, 4, mode=mode, keep_runtime=True, **kw)


def test_pc_expected_inputs():
    r = _run(validate=True)
    pc_arr = next(a for a in r.runtime.arrays.values()
                  if not a.internal and len(a.dims) == 3)
    for pc in pc_arr.elements.values():
        assert pc.expected_inputs() == 2 * r.cfg.grain
        assert pc.got_inputs == 0  # reset after each multiply


def test_pc_operand_shapes():
    r = _run(validate=True)
    pc_arr = next(a for a in r.runtime.arrays.values()
                  if not a.internal and len(a.dims) == 3)
    cfg = r.cfg
    for pc in pc_arr.elements.values():
        assert pc.left.shape == (cfg.points_per_plane, cfg.grain)
        assert pc.right.shape == (cfg.points_per_plane, cfg.grain)


def test_gs_iterations_completed():
    r = _run()
    gs_arr = next(a for a in r.runtime.arrays.values()
                  if not a.internal and len(a.dims) == 2)
    for gs in gs_arr.elements.values():
        assert gs.it == SMALL["iterations"]


def test_multiplies_counted_via_trace():
    r = _run()
    cfg = r.cfg
    # each PC multiplies once per iteration; each multiply is a local
    # self-send entry ("the callback enqueues an entry method")
    pc_count = cfg.pc_count
    msgs = r.runtime.trace.counter("pe.messages_executed")
    assert msgs >= pc_count * cfg.iterations


def test_monitor_counts_barriers():
    r = _run()
    assert len(r.step_times) == SMALL["iterations"]


def test_mean_step_skips_first():
    m = OpenAtomMonitor.__new__(OpenAtomMonitor)
    from repro.apps.openatom.driver import OpenAtomResult

    res = OpenAtomResult("Abe", "msg", 4, OpenAtomConfig(), [1.0, 2.0, 3.0])
    assert res.mean_step_time == pytest.approx(2.5)
    res1 = OpenAtomResult("Abe", "msg", 4, OpenAtomConfig(), [4.0])
    assert res1.mean_step_time == 4.0


def test_msg_and_ckd_same_physics():
    """The damped points after N steps are version-independent."""
    def final_points(mode):
        r = _run(mode=mode, validate=True)
        gs_arr = next(a for a in r.runtime.arrays.values()
                      if not a.internal and len(a.dims) == 2)
        return np.stack([gs_arr.elements[(s, p)].points
                         for s in range(8) for p in range(2)])

    assert np.allclose(final_points("msg"), final_points("ckd"))


def test_rest_rounds_lengthen_full_step_only():
    short = _run(rest_rounds=1)
    long = _run(rest_rounds=6)
    assert long.mean_step_time > short.mean_step_time
    pc_short = _run(rest_rounds=1, pc_only=True)
    pc_long = _run(rest_rounds=6, pc_only=True)
    assert pc_long.mean_step_time == pytest.approx(pc_short.mean_step_time)
