"""ResultStore: atomic writes, LRU eviction, manifest, persistence."""

import hashlib
import json
import os

import pytest

from repro.serve.store import ResultStore, StoreError


def d(tag: str) -> str:
    return hashlib.sha256(tag.encode()).hexdigest()


class TestBasics:
    def test_get_put_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(d("a")) is None
        store.put(d("a"), b"payload-a")
        assert store.get(d("a")) == b"payload-a"
        assert d("a") in store and len(store) == 1

    def test_bad_digest_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        for bad in ("short", "Z" * 64, "", "xyz"):
            with pytest.raises(StoreError):
                store.get(bad)
        with pytest.raises(StoreError):
            store.put("nope", b"x")

    def test_non_bytes_payload_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="bytes"):
            ResultStore(tmp_path).put(d("a"), "not-bytes")

    def test_reput_is_noop(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(d("a"), b"first")
        store.put(d("a"), b"second-ignored")  # content-addressed: immutable
        assert store.get(d("a")) == b"first"

    def test_zero_cap_rejected(self, tmp_path):
        with pytest.raises(StoreError):
            ResultStore(tmp_path, max_bytes=0)


class TestAtomicity:
    def test_object_file_is_whole(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(d("a"), b"x" * 1000)
        path = tmp_path / "objects" / d("a")[:2] / d("a")
        assert path.read_bytes() == b"x" * 1000

    def test_no_tmp_litter_after_put(self, tmp_path):
        store = ResultStore(tmp_path)
        for i in range(5):
            store.put(d(f"k{i}"), b"v" * 10)
        leftovers = [
            p for p in (tmp_path / "objects").rglob(".tmp-*")
        ]
        assert leftovers == []

    def test_vanished_file_degrades_to_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(d("a"), b"x")
        os.unlink(tmp_path / "objects" / d("a")[:2] / d("a"))
        assert store.get(d("a")) is None
        assert d("a") not in store


class TestLRU:
    def test_eviction_drops_coldest(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=250)
        store.put(d("a"), b"a" * 100)
        store.put(d("b"), b"b" * 100)
        store.get(d("a"))                  # refresh a: b is now coldest
        store.put(d("c"), b"c" * 100)      # 300 > 250: evict b
        assert store.get(d("b")) is None
        assert store.get(d("a")) == b"a" * 100
        assert store.get(d("c")) == b"c" * 100
        assert store.evictions == 1

    def test_new_entry_never_self_evicts(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=50)
        store.put(d("big"), b"x" * 200)    # alone over cap: kept anyway
        assert store.get(d("big")) == b"x" * 200

    def test_cap_respected_across_many_puts(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=500)
        for i in range(20):
            store.put(d(f"k{i}"), b"v" * 100)
        assert store.total_bytes <= 500
        assert store.evictions == 15
        # The newest entries survive.
        assert store.get(d("k19")) is not None
        assert store.get(d("k0")) is None


class TestPersistence:
    def test_reopen_sees_objects(self, tmp_path):
        ResultStore(tmp_path).put(d("a"), b"persisted")
        store2 = ResultStore(tmp_path)
        assert store2.get(d("a")) == b"persisted"
        assert len(store2) == 1

    def test_reopen_preserves_lru_order(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(d("old"), b"o" * 100)
        store.put(d("new"), b"n" * 100)
        os.utime(tmp_path / "objects" / d("old")[:2] / d("old"), (1, 1))
        store2 = ResultStore(tmp_path, max_bytes=250)
        store2.put(d("k"), b"k" * 100)     # must evict, coldest first
        assert store2.get(d("old")) is None
        assert store2.get(d("new")) is not None


class TestManifest:
    def test_manifest_contents(self, tmp_path):
        store = ResultStore(tmp_path, max_bytes=10_000)
        store.put(d("a"), b"aaa")
        store.put(d("b"), b"bbbb")
        m = store.manifest()
        assert m["objects"] == 2
        assert m["total_bytes"] == 7
        assert m["max_bytes"] == 10_000
        assert {e["digest"] for e in m["entries"]} == {d("a"), d("b")}

    def test_write_manifest(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put(d("a"), b"x")
        out = tmp_path / "manifest.json"
        store.write_manifest(out)
        loaded = json.loads(out.read_text())
        assert loaded["objects"] == 1 and loaded["entries"][0]["digest"] == d("a")
