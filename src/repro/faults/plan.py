"""Fault plans: what can go wrong on the simulated fabric, and how often.

A :class:`FaultPlan` is a declarative description of an imperfect
fabric: per-delivery probabilities of a delivery being **dropped**,
**duplicated**, or **delayed** by sampled jitter, of the sending NIC
**stalling**, and — specific to CkDirect's out-of-band completion
scheme — of a put landing its payload but losing (**tearing**) the
trailing sentinel word, the failure mode that silently defeats the
poll sweep (paper §2.1).

Faults are *scoped* per transport service so a profile can target the
unprotected CkDirect data path without starving the control plane:

* ``"put"``   — :meth:`Fabric.direct_put` deliveries (the RDMA write /
  DCMF send carrying a CkDirect put),
* ``"ack"``   — the reliability layer's completion acks,
* ``"charm"`` — :meth:`Fabric.charm_transport` messages,
* ``"raw"``   — bare :meth:`Fabric.transfer` calls (the simulated-MPI
  driving path).

The built-in profiles (:data:`PROFILES`) only fault the ``put``/``ack``
scopes: those are exactly the deliveries the new reliability machinery
(sequence numbers + retransmit + watchdog + fallback) can recover, so
an application run under any built-in profile must still produce
bit-identical results — the property ``repro chaos`` asserts.
Dropping ``charm``/``raw`` deliveries deadlocks a run by design (no
retransmission exists there); custom plans may still do it to study
exactly that.

All randomness is drawn from per-category :func:`repro.sim.rng.substream`
generators seeded from the plan's seed, so a faulted run is a pure
function of ``(workload, seed)`` and is reproducible at any ``--jobs N``.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Tuple


class FaultConfigError(ValueError):
    """Raised for malformed fault plans or unknown profile names."""


@dataclass(frozen=True)
class FaultRule:
    """Fault probabilities for one transport-service scope.

    All probabilities are per delivery (or per ack, for ``ack_drop`` on
    the ``ack`` scope).  ``delay_mean`` parameterizes an exponential
    jitter added on top of the modelled delivery time; ``stall_time``
    is the length of a NIC freeze charged to the sending node's
    injection port.
    """

    drop: float = 0.0          # P(delivery lost)
    dup: float = 0.0           # P(delivery duplicated)
    delay: float = 0.0         # P(delivery jittered)
    delay_mean: float = 50e-6  # mean of the exponential jitter (s)
    torn: float = 0.0          # P(payload lands, sentinel word lost)
    stall: float = 0.0         # P(sender NIC stalls at injection)
    stall_time: float = 300e-6  # NIC freeze duration (s)

    def __post_init__(self) -> None:
        for name in ("drop", "dup", "delay", "torn", "stall"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultConfigError(f"{name} must be a probability, got {p!r}")
        if self.delay_mean < 0 or self.stall_time < 0:
            raise FaultConfigError("delay_mean/stall_time must be non-negative")

    @property
    def active(self) -> bool:
        """True when any fault of this rule can actually fire."""
        return any(
            getattr(self, f) > 0.0
            for f in ("drop", "dup", "delay", "torn", "stall")
        )


#: Transport-service scopes a rule can attach to.
SCOPES = ("put", "ack", "charm", "raw")

_NO_FAULTS = FaultRule()


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of per-scope fault rules."""

    profile: str
    seed: int = 0x0FA11
    rules: Tuple[Tuple[str, FaultRule], ...] = ()

    def __post_init__(self) -> None:
        for scope, _rule in self.rules:
            if scope not in SCOPES:
                raise FaultConfigError(
                    f"unknown fault scope {scope!r}; expected one of {SCOPES}"
                )

    def rule(self, scope: str) -> FaultRule:
        """The rule for a scope (an all-zero rule when unconfigured)."""
        for s, r in self.rules:
            if s == scope:
                return r
        return _NO_FAULTS

    @property
    def active(self) -> bool:
        """True when any configured rule can fire a fault."""
        return any(r.active for _s, r in self.rules)

    @classmethod
    def named(cls, profile: str, seed: int = 0x0FA11) -> "FaultPlan":
        """Build one of the built-in profiles by name."""
        try:
            rules = PROFILES[profile]
        except KeyError:
            raise FaultConfigError(
                f"unknown fault profile {profile!r}; "
                f"known: {sorted(PROFILES)}"
            ) from None
        return cls(profile=profile, seed=seed, rules=rules)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan reseeded (independent fault sequence)."""
        return dataclasses.replace(self, seed=seed)


#: Built-in profiles, keyed by the ``--faults`` CLI names.  Each is a
#: tuple of (scope, rule) pairs — tuples, not dicts, so plans stay
#: hashable and cheaply picklable for sweep workers.
PROFILES: Dict[str, Tuple[Tuple[str, FaultRule], ...]] = {
    # Reliability machinery armed, fabric perfect: measures the cost of
    # the protection itself and anchors the chaos oracle's comparisons.
    "none": (),
    # Put deliveries vanish; some acks vanish too, exercising duplicate
    # detection on the receiver when the sender retransmits a put that
    # actually arrived.
    "drop": (
        ("put", FaultRule(drop=0.15)),
        ("ack", FaultRule(drop=0.10)),
    ),
    # The CkDirect-specific failure: the RDMA write completes for the
    # payload but the trailing double word never lands, so the poll
    # sweep can never observe arrival (§2.1's sharp edge).
    "torn-sentinel": (
        ("put", FaultRule(torn=0.20)),
    ),
    # Deliveries arrive late (sometimes later than the retransmit
    # timeout — the stale-duplicate path) and occasionally twice.
    "delay": (
        ("put", FaultRule(delay=0.30, delay_mean=400e-6, dup=0.05)),
    ),
    # The sending NIC freezes, back-pressuring every later transfer
    # from that node through the injection-occupancy model.
    "nic-stall": (
        ("put", FaultRule(stall=0.08, stall_time=500e-6)),
    ),
}


def parse_profiles(spec: str) -> Tuple[str, ...]:
    """Parse a ``--faults`` value: comma-separated profile names.

    ``"all"`` expands to every built-in profile (deterministic order).
    """
    if spec.strip() == "all":
        return tuple(sorted(PROFILES))
    names = tuple(s.strip() for s in spec.split(",") if s.strip())
    if not names:
        raise FaultConfigError(f"no fault profiles in {spec!r}")
    for name in names:
        if name not in PROFILES:
            raise FaultConfigError(
                f"unknown fault profile {name!r}; known: {sorted(PROFILES)}"
            )
    return names


# ---------------------------------------------------------------------------
# Process-scope faults (``repro chaos --proc``)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ProcFaultRule:
    """One real fault against a shard worker *process*.

    Unlike :class:`FaultRule` these are not simulated-fabric faults: a
    ``kill`` rule SIGKILLs the worker at an epoch/GVT barrier, ``hang``
    wedges it in a SIGTERM-ignoring sleep loop (exercising the
    supervisor's deadline + kill escalation), and ``slow`` adds a
    per-barrier wall-clock delay (a straggler that must *not* trip the
    hang detector).  ``at_round`` is 1-based and counts the barriers
    the target worker reaches.  One-shot rules (the default) fire only
    in the worker's first incarnation, so a supervised restart
    recovers; ``every_incarnation`` re-fires in replacements too and
    exhausts the restart budget — the serial-degradation path.
    """

    kind: str                        # "kill" | "hang" | "slow"
    shard: int = 1                   # target shard id
    at_round: int = 3                # barrier at which kill/hang fires
    every_incarnation: bool = False  # refire after supervised restarts
    slow_s: float = 0.0              # per-barrier delay for "slow"

    def __post_init__(self) -> None:
        if self.kind not in ("kill", "hang", "slow"):
            raise FaultConfigError(
                f"proc fault kind must be kill, hang, or slow, "
                f"got {self.kind!r}"
            )
        if self.shard < 0:
            raise FaultConfigError(f"shard must be >= 0, got {self.shard}")
        if self.at_round < 1:
            raise FaultConfigError(
                f"at_round must be >= 1, got {self.at_round}"
            )
        if self.slow_s < 0:
            raise FaultConfigError(f"slow_s must be >= 0, got {self.slow_s}")


@dataclass(frozen=True)
class ProcFaultPlan:
    """A named set of process-scope fault rules (picklable, frozen)."""

    profile: str
    rules: Tuple[ProcFaultRule, ...] = ()

    @classmethod
    def named(cls, profile: str) -> "ProcFaultPlan":
        """Build one of the built-in proc profiles by name."""
        try:
            rules = PROC_PROFILES[profile]
        except KeyError:
            raise FaultConfigError(
                f"unknown proc fault profile {profile!r}; "
                f"known: {sorted(PROC_PROFILES)}"
            ) from None
        return cls(profile=profile, rules=rules)

    def for_shard(self, shard: int, incarnation: int) -> Tuple[ProcFaultRule, ...]:
        """The rules that apply to one worker incarnation."""
        return tuple(
            r for r in self.rules
            if r.shard == shard and (incarnation == 0 or r.every_incarnation)
        )


#: Built-in process-scope chaos profiles (``--proc`` CLI names).  The
#: ``corrupt-object`` profile has no worker rules — it targets the
#: serve :class:`~repro.serve.store.ResultStore` instead (the chaos
#: harness bit-flips a stored object and asserts quarantine +
#: recompute); it lives here so one flag namespace covers every
#: process-scope fault.
PROC_PROFILES: Dict[str, Tuple[ProcFaultRule, ...]] = {
    "kill-shard": (ProcFaultRule("kill", shard=1, at_round=3),),
    "hang-shard": (ProcFaultRule("hang", shard=1, at_round=3),),
    "slow-worker": (ProcFaultRule("slow", shard=1, slow_s=0.002),),
    "corrupt-object": (),
}


def parse_proc_profiles(spec: str) -> Tuple[str, ...]:
    """Parse a ``--proc`` value: comma-separated proc profile names.

    ``"all"`` expands to every built-in proc profile (deterministic
    order).
    """
    if spec.strip() == "all":
        return tuple(sorted(PROC_PROFILES))
    names = tuple(s.strip() for s in spec.split(",") if s.strip())
    if not names:
        raise FaultConfigError(f"no proc fault profiles in {spec!r}")
    for name in names:
        if name not in PROC_PROFILES:
            raise FaultConfigError(
                f"unknown proc fault profile {name!r}; "
                f"known: {sorted(PROC_PROFILES)}"
            )
    return names


@dataclass(frozen=True)
class ReliabilityParams:
    """Knobs of the put-reliability layer (all simulated seconds).

    Installed on the runtime whenever a :class:`FaultPlan` is; the
    defaults sit well above Abe/Surveyor delivery latencies (tens of
    microseconds) so a clean put is never spuriously retransmitted,
    while a lost one recovers within a few hundred microseconds.
    """

    rto_initial: float = 200e-6   # first retransmit timeout
    rto_backoff: float = 2.0      # exponential backoff factor
    max_attempts: int = 4         # RDMA attempts before falling back
    ack_bytes: int = 16           # completion-ack control payload
    watchdog_period: float = 500e-6   # poll-queue scan interval
    watchdog_timeout: float = 1.2e-3  # in-flight age that counts as a stall

    def __post_init__(self) -> None:
        if self.rto_initial <= 0 or self.rto_backoff < 1.0:
            raise FaultConfigError("rto_initial must be > 0 and backoff >= 1")
        if self.max_attempts < 1:
            raise FaultConfigError("max_attempts must be at least 1")
        if self.watchdog_period <= 0 or self.watchdog_timeout <= 0:
            raise FaultConfigError("watchdog period/timeout must be > 0")

    def rto(self, attempt: int) -> float:
        """Retransmit timeout for the given 1-based attempt number."""
        return self.rto_initial * self.rto_backoff ** (attempt - 1)
