"""The async job queue: submit → poll/stream → fetch.

:class:`JobManager` owns the full job lifecycle on one asyncio loop:

* **submit** — canonicalize the request's specs into a job digest;
  a store hit completes instantly (``cached=True``), a digest already
  queued/running coalesces onto the in-flight job (one computation
  serves every concurrent requester), and a genuine miss is enqueued —
  unless the bounded queue is full, in which case
  :class:`QueueFullError` carries a ``retry_after`` estimate for the
  HTTP layer's 429.
* **run** — a fixed pool of worker *tasks* pulls jobs and executes
  their specs through the existing
  :class:`~repro.sweep.runner.SweepRunner` in a thread executor, so
  the event loop keeps serving status/metrics while simulations run
  in subprocesses.  Per-point completion callbacks stream progress
  back onto the loop.
* **finish** — successful jobs serialize to the canonical payload and
  are written to the content-addressed store; any failed point marks
  the job failed and is *never* cached (error text is nondeterministic).
* **drain** — :meth:`shutdown` stops intake, lets every accepted job
  finish, then retires the workers.
"""

from __future__ import annotations

import asyncio
import enum
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..sweep.runner import SweepRunner
from ..sweep.spec import RunSpec
from .digest import job_digest, result_payload
from .store import StoreError
from .metrics import ServeMetrics
from .store import ResultStore


class JobState(str, enum.Enum):
    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"


class QueueFullError(RuntimeError):
    """Queue at capacity; carries the 429 Retry-After estimate."""

    def __init__(self, depth: int, retry_after: float) -> None:
        super().__init__(f"job queue full ({depth} queued)")
        self.retry_after = max(1.0, retry_after)


class ServerClosing(RuntimeError):
    """Submit refused because the server is draining for shutdown."""


@dataclass
class Job:
    """One submitted computation (possibly shared by many requesters)."""

    id: str
    digest: str
    specs: List[RunSpec]
    state: JobState = JobState.QUEUED
    cached: bool = False          # completed straight from the store
    done_points: int = 0
    error: str = ""
    payload: Optional[bytes] = None
    created: float = field(default_factory=time.monotonic)
    finished: Optional[float] = None
    #: bumped on every visible change; streamers wait on the condition.
    version: int = 0
    _cond: asyncio.Condition = field(default_factory=asyncio.Condition, repr=False)

    @property
    def total_points(self) -> int:
        return len(self.specs)

    @property
    def kind(self) -> str:
        """Dominant spec kind, for metrics/labels."""
        return self.specs[0].kind if self.specs else "?"

    @property
    def terminal(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)

    def to_dict(self) -> Dict:
        """Status JSON for the HTTP layer."""
        return {
            "job": self.id,
            "digest": self.digest,
            "status": self.state.value,
            "cached": self.cached,
            "kind": self.kind,
            "points": {"done": self.done_points, "total": self.total_points},
            "error": self.error,
        }

    async def _bump(self) -> None:
        async with self._cond:
            self.version += 1
            self._cond.notify_all()

    async def wait_change(self, version: int) -> int:
        """Block until :attr:`version` advances past ``version``."""
        async with self._cond:
            while self.version <= version and not self.terminal:
                await self._cond.wait()
            return self.version


class JobManager:
    """Bounded async job queue over a SweepRunner pool."""

    def __init__(
        self,
        store: ResultStore,
        metrics: Optional[ServeMetrics] = None,
        *,
        workers: int = 2,
        max_queue: int = 32,
        jobs_per_run: Optional[int] = None,
        point_timeout: Optional[float] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be at least 1, got {max_queue}")
        self.store = store
        self.metrics = metrics if metrics is not None else ServeMetrics()
        self.workers = workers
        self.max_queue = max_queue
        self.jobs_per_run = jobs_per_run
        self.point_timeout = point_timeout
        self.jobs: Dict[str, Job] = {}          # job id -> job (all ever seen)
        self._inflight: Dict[str, Job] = {}     # digest -> queued/running job
        self._queue: "asyncio.Queue[Optional[Job]]" = asyncio.Queue()
        self._queued = 0                        # jobs accepted but not started
        self._running = 0
        self._tasks: List[asyncio.Task] = []
        self._closing = False
        self._ids = itertools.count(1)
        #: EWMA of recent job wall-times, seeds the Retry-After estimate.
        self._avg_job_s = 1.0

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Spawn the worker tasks (idempotent)."""
        if self._tasks:
            return
        self._tasks = [
            asyncio.create_task(self._worker(), name=f"serve-worker-{i}")
            for i in range(self.workers)
        ]

    async def shutdown(self, drain: bool = True) -> None:
        """Stop intake; drain accepted jobs (or cancel), retire workers."""
        self._closing = True
        if not drain:
            for t in self._tasks:
                t.cancel()
        else:
            for _ in self._tasks:
                self._queue.put_nowait(None)  # one poison pill per worker
        await asyncio.gather(*self._tasks, return_exceptions=True)
        self._tasks = []

    def gauges(self) -> Dict:
        """Queue-state snapshot for /metrics."""
        return {
            "depth": self._queued,
            "running": self._running,
            "workers": self.workers,
            "max_queue": self.max_queue,
            "closing": self._closing,
        }

    # -- submit ---------------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def submit(self, specs: Sequence[RunSpec]) -> Job:
        """Accept a job (hit, coalesce, or enqueue) or raise backpressure.

        Synchronous on purpose: every path is O(1) apart from one
        store read, so the HTTP handler can answer without yielding.
        """
        if self._closing:
            raise ServerClosing("server is draining; not accepting jobs")
        specs = list(specs)
        digest = job_digest(specs)

        inflight = self._inflight.get(digest)
        if inflight is not None:
            self.metrics.coalesced += 1
            return inflight

        payload = self.store.get(digest)
        if payload is not None:
            self.metrics.hits += 1
            self.metrics.submitted += 1
            job = Job(
                id=f"j{next(self._ids):06d}", digest=digest, specs=specs,
                state=JobState.DONE, cached=True, payload=payload,
                done_points=len(specs), finished=time.monotonic(),
            )
            self.jobs[job.id] = job
            return job

        if self._queued >= self.max_queue:
            self.metrics.rejected += 1
            # Jobs ahead of us, spread over the pool, at the recent
            # average job duration: a coarse but honest estimate.
            backlog = self._queued + self._running
            raise QueueFullError(
                self._queued,
                retry_after=self._avg_job_s * backlog / self.workers,
            )

        self.metrics.misses += 1
        self.metrics.submitted += 1
        job = Job(id=f"j{next(self._ids):06d}", digest=digest, specs=specs)
        self.jobs[job.id] = job
        self._inflight[digest] = job
        self._queued += 1
        self._queue.put_nowait(job)
        return job

    # -- execution ------------------------------------------------------

    async def _worker(self) -> None:
        while True:
            job = await self._queue.get()
            if job is None:  # poison pill: drain complete
                return
            self._queued -= 1
            self._running += 1
            try:
                await self._execute(job)
            except Exception as exc:
                # A bug anywhere in the execute path (store I/O, payload
                # encoding, ...) must fail *the job*, never unwind the
                # worker — a dead worker silently shrinks the pool until
                # the server stops serving.
                job.state = JobState.FAILED
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished = time.monotonic()
                self.metrics.failed += 1
                await job._bump()
            finally:
                self._running -= 1
                self._inflight.pop(job.digest, None)

    async def _execute(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        job.state = JobState.RUNNING
        await job._bump()
        t0 = time.monotonic()

        def _on_point(res) -> None:
            # Runs on the executor thread: hop back onto the loop.
            def _advance() -> None:
                job.done_points += 1
                asyncio.ensure_future(job._bump())
            try:
                loop.call_soon_threadsafe(_advance)
            except RuntimeError:
                pass  # loop already closed during teardown

        runner = SweepRunner(
            jobs=self.jobs_per_run,
            timeout=self.point_timeout,
            label=f"serve:{job.kind}",
        )
        try:
            results = await loop.run_in_executor(
                None, lambda: runner.run(job.specs, progress=_on_point)
            )
        except Exception as exc:  # runner-level failure (not a point failure)
            job.state = JobState.FAILED
            job.error = f"{type(exc).__name__}: {exc}"
        else:
            self.metrics.observe_engine(
                sum(r.events for r in results if r.ok),
                time.monotonic() - t0,
            )
            failed = [r for r in results if not r.ok]
            if failed:
                job.state = JobState.FAILED
                job.error = "; ".join(
                    f"{r.spec.label()}: {r.error.strip().splitlines()[-1]}"
                    for r in failed[:3]
                )
            else:
                payload = result_payload(results)
                try:
                    self.store.put(job.digest, payload)
                except (StoreError, OSError):
                    pass  # disk trouble: serve the computed payload
                    # uncached rather than failing the job
                job.payload = payload
                job.state = JobState.DONE

        wall = time.monotonic() - t0
        self._avg_job_s = 0.7 * self._avg_job_s + 0.3 * wall
        job.done_points = job.total_points if job.state == JobState.DONE else job.done_points
        job.finished = time.monotonic()
        if job.state == JobState.DONE:
            self.metrics.completed += 1
        else:
            self.metrics.failed += 1
        self.metrics.observe_latency(job.kind, "miss", wall)
        await job._bump()
