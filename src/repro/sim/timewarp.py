"""Time Warp optimistic parallel DES engine (``--engine optimistic``).

The conservative engine (:mod:`repro.sim.parallel`) is gated by its
lookahead window ``delta = Fabric.min_remote_latency()``: on a low-
latency fabric the epoch windows shrink until fork/pipe synchronization
dominates the run — the same regime in which CkDirect itself argues
that synchronization, not data movement, is the bottleneck.  This
module makes the complementary optimistic bet (Jefferson's Time Warp):
shards **speculate past the epoch boundary**, checkpoint their state
periodically, and repair mis-speculation after the fact.

Protocol (lock-step rounds on the same fork/pipe transport):

1. At a barrier every shard ships the cross-shard records it buffered
   (each stamped with a process-local ``(shard, counter)`` *token*),
   any anti-messages from flushed rollback epochs, its next local
   event time, and its *floor* (the minimum target arrival time over
   pending anti-message candidates).
2. The coordinator (shard 0, in-process) computes the **GVT** — the
   minimum over all next-event times, all routed record arrival times,
   all anti-message targets, and all floors — and routes records and
   antis to their destination shards.  ``GVT == inf`` terminates.
3. Each shard processes antis (dead-marking the targeted records),
   rolls back if any anti target or incoming record lies at or below
   its local clock (**straggler**), admits its inbox, fossil-collects
   checkpoints below GVT, checkpoints on an event-count cadence
   (``REPRO_TW_CPEVENTS``), and speculates to the round's bound
   ``floor + H*delta``.  By default ``H`` is **adaptive**: the
   coordinator collapses it to 1 — exactly the conservative window,
   which admits no stragglers — whenever a routed arrival lands in
   some shard's past, and doubles it after every clean round.
   ``REPRO_TW_HORIZON=H`` pins a fixed horizon instead, and
   ``REPRO_TW_HORIZON=max`` selects unbounded run-to-drain
   speculation.

Rollback restores the newest checkpoint strictly below the straggler
time and replays.  Replay is **bit-exact** (state restore is in-place
and complete, handle ids are allocated from a checkpointed per-runtime
counter), which powers the anti-message scheme: a send whose
generating event lies *below* the straggler regenerates byte-for-byte
and is **deduplicated** against the rollback epoch's stale-send set
(the shipped copy simply stands, under its original token) rather than
cancelled and re-shipped.  Only sends from the divergent region — the
epoch entries still unmatched once the clock passes the rollback point
(or at a coordinator-forced flush when the system is otherwise quiet)
— become anti-messages ``(token, arrival_time)``.  The floor term in
the GVT keeps every unflushed anti target above GVT, so an anti always
finds its target's input-log entry before the destination could have
fossil-collected the checkpoints needed to undo it.

Determinism: admission still uses the conservative engine's canonical
``(head_arrival, dst, src, k)`` order, and a rolled-back shard replays
the exact ``(time, priority, seq)`` event order of its first
execution, so ``--engine optimistic --shards N`` is **bit-identical**
to ``--shards 1`` on every app, for every event-queue implementation.

Host-side callbacks run **eagerly**, like chare methods — they may
drive progress (iteration monitors broadcast the next step from their
barrier callback), so deferring them would stall the application.
Their side effects must therefore be confined to attributes of objects
registered through ``Runtime.register_host_state`` *before* the run
starts: checkpoints snapshot those objects alongside chare state, so a
rollback undoes a speculative callback's mutations exactly.  (Host
callbacks cannot cross shards — the wire codec rejects them — so they
only ever fire on the coordinator shard.)
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from ..network.topology import shard_nodes
from .eventq import checkpoint_sim, restore_sim
from .parallel import (
    ParallelEngineError,
    _enter_shard,
    _final_payload,
    _fork_plan,
    _make_shard_of_rank,
    _merge_final,
    _proc_injector,
    _reap_shard,
    _recv,
    _run_serial_inline,
    encode_record,
)

if TYPE_CHECKING:  # pragma: no cover
    from ..charm.runtime import Runtime

_INF = float("inf")

#: timewarp_stats keys (gvt_rounds is coordinator-only; the rest are
#: summed across shards).
STAT_KEYS = (
    "rollbacks",
    "antis",
    "antis_received",
    "dedups",
    "checkpoints",
    "events_rolled_back",
    "gvt_rounds",
)


# ---------------------------------------------------------------------------
# Engine-mode resolution (flag > env > default, as resolve_shards/eventq)
# ---------------------------------------------------------------------------


ENGINE_CHOICES = ("conservative", "optimistic")


def resolve_engine(engine: Optional[str] = None) -> str:
    """Engine mode: explicit argument, else ``REPRO_ENGINE``, else
    ``conservative``.

    Precedence is *flag over environment over default* (matching
    :func:`repro.sim.parallel.resolve_shards` and
    :func:`repro.sim.eventq.resolve_eventq`); unknown values raise a
    one-line :class:`ParallelEngineError` rather than being ignored.
    """
    if engine is not None:
        val = str(engine).strip().lower()
        if val not in ENGINE_CHOICES:
            raise ParallelEngineError(
                f"engine must be one of {', '.join(ENGINE_CHOICES)}, "
                f"got {engine!r}"
            )
        return val
    env = os.environ.get("REPRO_ENGINE", "").strip().lower()
    if env:
        if env not in ENGINE_CHOICES:
            raise ParallelEngineError(
                f"REPRO_ENGINE must be one of {', '.join(ENGINE_CHOICES)}, "
                f"got {env!r}"
            )
        return env
    return "conservative"


def _resolve_horizon() -> Optional[float]:
    """``REPRO_TW_HORIZON``: speculation bound per round, in lookahead
    windows (``floor + H*delta``).

    Unset (the default) selects the **adaptive** horizon: the
    coordinator starts at ``H=1`` — exactly the conservative window,
    which provably admits no stragglers — doubles ``H`` after every
    straggler-free round, and collapses back to 1 the moment a routed
    record or anti-message lands in some shard's past.  Speculation is
    therefore aggressive through decoupled (compute) phases and
    automatically conservative through latency-coupled (barrier)
    phases, where fixed horizons roll back persistently.  ``max``
    selects unbounded run-to-drain speculation; a positive integer
    pins a fixed horizon."""
    env = os.environ.get("REPRO_TW_HORIZON", "").strip().lower()
    if not env:
        return None
    if env == "max":
        return _INF
    try:
        val = int(env)
    except ValueError:
        raise ParallelEngineError(
            f"REPRO_TW_HORIZON must be a positive integer or 'max', "
            f"got {env!r}"
        ) from None
    if val < 1:
        raise ParallelEngineError(
            f"REPRO_TW_HORIZON must be at least 1, got {val}"
        )
    return float(val)


def _resolve_cp_events() -> int:
    """``REPRO_TW_CPEVENTS``: mid-run checkpoint cadence in events."""
    env = os.environ.get("REPRO_TW_CPEVENTS", "").strip()
    if not env:
        return 50_000
    try:
        val = int(env)
    except ValueError:
        raise ParallelEngineError(
            f"REPRO_TW_CPEVENTS must be a positive integer, got {env!r}"
        ) from None
    if val < 1:
        raise ParallelEngineError(
            f"REPRO_TW_CPEVENTS must be at least 1, got {val}"
        )
    return val


# ---------------------------------------------------------------------------
# Shard checkpoints
# ---------------------------------------------------------------------------


def _scan_handles(value: Any, out: dict) -> None:
    """Collect CkDirect handles reachable from a chare attribute
    (proxies built by the wire codec are not in ``rt._handles``)."""
    from ..ckdirect.handle import CkDirectHandle

    if isinstance(value, CkDirectHandle):
        out[id(value)] = value
    elif isinstance(value, (list, tuple)):
        for x in value:
            _scan_handles(x, out)
    elif isinstance(value, dict):
        for x in value.values():
            _scan_handles(x, out)


class ShardCheckpoint:
    """A complete, in-place-restorable snapshot of one shard's state.

    Holds the event queue (via :func:`checkpoint_sim`), the fabric's
    engine buffers, owned PEs, owned chare elements, CkDirect handles,
    reduction nodes, registered host-state objects, trace counters/
    stats, and the Time Warp log positions (input log, sent log,
    tracer length) that anchor rollback accounting.  Restores write
    contents back **into the original objects**, so references held by
    checkpointed event closures stay coherent.
    """

    __slots__ = (
        "now", "events_processed", "input_len", "sent_len", "host_snaps",
        "tracer_len", "outbox_ids", "sim_snap", "fab_snap", "pe_snaps",
        "chare_snaps", "handle_snaps", "handles_dict", "red_snap",
        "trace_snap", "next_hid",
    )

    @classmethod
    def capture(
        cls, rt: "Runtime", owned: frozenset, input_len: int, sent_len: int
    ) -> "ShardCheckpoint":
        from ..charm.chare import _snap_value

        cp = cls()
        cp.now = rt.sim.now
        cp.events_processed = rt.sim.events_processed
        cp.input_len = input_len
        cp.sent_len = sent_len
        cp.host_snaps = [
            (obj, [(k, _snap_value(v)) for k, v in obj.__dict__.items()])
            for obj in rt._tw_host_state
        ]
        cp.tracer_len = len(rt.tracer.events) if rt.tracer is not None else 0
        cp.next_hid = rt._next_hid
        cp.sim_snap = checkpoint_sim(rt.sim)
        cp.fab_snap = rt.fabric.engine_checkpoint()
        cp.outbox_ids = frozenset(id(r) for r in cp.fab_snap[1])
        cp.pe_snaps = [
            (pe, pe.tw_checkpoint()) for pe in rt.pes if pe.rank in owned
        ]
        chares = []
        if rt._tw_handles is not None:
            # Optimistic runtime: every handle self-registered at
            # construction — snapshot the registry directly instead of
            # rediscovering handles through chare attributes (the scan
            # re-walks ~70 values per chare per capture for a handle
            # set that is static after setup).
            for arr in rt.arrays.values():
                for elem in arr.elements.values():
                    if elem._pe.rank in owned:
                        chares.append((elem, elem.tw_checkpoint()))
            handles = rt._tw_handles
        else:
            handles = {}
            for h in rt._handles.values():
                handles[id(h)] = h
            for arr in rt.arrays.values():
                for elem in arr.elements.values():
                    if elem._pe.rank in owned:
                        chares.append((elem, elem.tw_checkpoint()))
                        for v in elem.__dict__.values():
                            _scan_handles(v, handles)
            for pe, _snap in cp.pe_snaps:
                for h in pe.pollq.values():
                    handles[id(h)] = h
        cp.chare_snaps = chares
        cp.handle_snaps = [(h, h.tw_checkpoint()) for h in handles.values()]
        cp.handles_dict = dict(rt._handles)
        cp.red_snap = rt.reductions.tw_checkpoint()
        cp.trace_snap = rt.trace.tw_checkpoint()
        return cp

    def restore(self, rt: "Runtime") -> None:
        from ..charm.chare import _restore_value

        restore_sim(rt.sim, self.sim_snap)
        rt.fabric.engine_restore(self.fab_snap)
        for pe, snap in self.pe_snaps:
            pe.tw_restore(snap)
        for elem, snap in self.chare_snaps:
            elem.tw_restore(snap)
        for h, snap in self.handle_snaps:
            h.tw_restore(snap)
        rt._handles.clear()
        rt._handles.update(self.handles_dict)
        rt.reductions.tw_restore(self.red_snap)
        for obj, snap in self.host_snaps:
            names = set()
            for k, s in snap:
                names.add(k)
                obj.__dict__[k] = _restore_value(s)
            for k in [n for n in obj.__dict__ if n not in names]:
                del obj.__dict__[k]
        rt.trace.tw_restore(self.trace_snap)
        if rt.tracer is not None:
            del rt.tracer.events[self.tracer_len:]
        rt._next_hid = self.next_hid


# ---------------------------------------------------------------------------
# Per-shard Time Warp machinery
# ---------------------------------------------------------------------------


class _Epoch:
    """One rollback's stale-send set, open until the clock re-passes
    the rollback's origin time (``old_now``) or a forced flush."""

    __slots__ = ("old_now", "by_enc", "count")

    def __init__(self, old_now: float, stale: Dict[tuple, tuple]) -> None:
        self.old_now = old_now
        self.by_enc: Dict[bytes, List[tuple]] = {}
        self.count = len(stale)
        for tok, (enc, dst, ha) in stale.items():
            self.by_enc.setdefault(enc, []).append((tok, dst, ha))

    def floor(self) -> float:
        lo = _INF
        for entries in self.by_enc.values():
            for _tok, _dst, ha in entries:
                if ha < lo:
                    lo = ha
        return lo


class _TimeWarpShard:
    """Everything one shard needs beyond the conservative worker: the
    send/input logs, checkpoints, epochs, and the round procedure."""

    def __init__(self, rt: "Runtime", shard_id: int, block: range,
                 cp_events: int) -> None:
        from .parallel import _owned_ranks

        self.rt = rt
        self.shard_id = shard_id
        self.owned = frozenset(_owned_ranks(rt, block))
        self.cp_events = cp_events
        self.next_token = 0
        #: ship log: (token, raw_record, enc_bytes, dst_rank, head_arrival);
        #: re-appended on dedup rematch so rollback accounting always sees
        #: a token at the position of its *latest* (re)generation.
        self.sent: List[tuple] = []
        #: raw records already shipped, by identity (strong refs live in
        #: ``sent``); guards against re-shipping a record restored into
        #: the outbox by a rollback to a mid-run checkpoint.
        self.shipped: Dict[int, tuple] = {}
        #: admission log: (token, record), in admission order.
        self.input_log: List[tuple] = []
        self.input_index: Dict[tuple, tuple] = {}
        #: anti-killed records by identity (strong refs prevent id reuse).
        self.dead: Dict[int, tuple] = {}
        #: anti-killed records whose *admission event* survives in the
        #: committed timeline.  admit_remote schedules one drain event
        #: per record; killing the record leaves that event to fire as
        #: a no-op the bit-identical serial run never executes, so the
        #: final event count subtracts these.  A rollback below the
        #: record's admission point erases the event (the restored
        #: queue predates it and dead records are not re-admitted),
        #: un-orphaning it.
        self.orphaned: set = set()
        self.epochs: List[_Epoch] = []
        self.cps: List[ShardCheckpoint] = []
        self.flush_pending = False
        self.bound = _INF
        self.stats = {k: 0 for k in STAT_KEYS}

    # -- barrier step 1: ship ------------------------------------------

    def barrier_state(self) -> tuple:
        rt = self.rt
        ship = []
        # The canonical encoding (``enc``) exists only to rematch sends
        # regenerated after a rollback against their stale epoch.  With
        # no epoch open — the common, rollback-free case — defer it:
        # a rollback re-encodes its tail from the raw records, which
        # are immutable once shipped.
        match = bool(self.epochs)
        for raw in rt.fabric.take_outbox():
            if id(raw) in self.shipped:
                continue  # restored copy of an already-shipped record
            wire = encode_record(raw)
            enc = None
            tok = None
            if match:
                enc = pickle.dumps(wire, pickle.HIGHEST_PROTOCOL)
                tok = self._match_stale(enc)
            if tok is None:
                tok = (self.shard_id, self.next_token)
                self.next_token += 1
                ship.append((tok, wire))
            else:
                self.stats["dedups"] += 1
            self.sent.append((tok, raw, enc, raw[1], raw[0]))
            self.shipped[id(raw)] = raw
        antis = self._flush_epochs(self.flush_pending)
        self.flush_pending = False
        floor = _INF
        for ep in self.epochs:
            f = ep.floor()
            if f < floor:
                floor = f
        # sim.now rides along so the coordinator can detect straggler
        # rounds (a routed arrival at or below the destination's clock)
        # and adapt the speculation horizon.
        return ("state", rt.sim.next_event_time(), ship, antis, floor,
                rt.sim.now)

    def _match_stale(self, enc: bytes) -> Optional[tuple]:
        for ep in self.epochs:
            entries = ep.by_enc.get(enc)
            if entries:
                tok, _dst, _ha = entries.pop(0)
                if not entries:
                    del ep.by_enc[enc]
                ep.count -= 1
                return tok
        return None

    def _flush_epochs(self, force: bool) -> List[tuple]:
        """Close epochs whose rollback origin the clock has re-passed
        (every pre-divergence send has regenerated and rematched by
        then); survivors are divergent sends that will never regenerate
        — emit their anti-messages.  ``force`` closes all epochs (the
        coordinator's quiescence flush)."""
        now = self.rt.sim.now
        out: List[tuple] = []
        keep: List[_Epoch] = []
        for ep in self.epochs:
            if force or now >= ep.old_now:
                for entries in ep.by_enc.values():
                    for tok, dst, ha in entries:
                        out.append((dst, tok, ha))
                self.stats["antis"] += ep.count
            else:
                keep.append(ep)
        self.epochs = keep
        return out

    # -- barrier steps 3-8: repair, admit, fossil, checkpoint ----------

    def do_round(self, bound: float, gvt: float, inbox: List[tuple],
                 antis: List[tuple], flush: bool) -> None:
        rt = self.rt
        sim = rt.sim
        now = sim.now
        h = _INF
        kill = set()
        for tok, ha in antis:
            rec = self.input_index.get(tok)
            if rec is None:
                raise ParallelEngineError(
                    f"anti-message for unknown token {tok!r} on shard "
                    f"{self.shard_id}"
                )
            self.dead[id(rec)] = rec
            self.orphaned.add(id(rec))
            self.stats["antis_received"] += 1
            if ha > now:
                kill.add(id(rec))  # not yet executed: unlink in place
            elif ha < h:
                h = ha  # executed: roll its effects back
        if kill:
            rt.fabric.engine_remove_records(kill)
        for _tok, rec in inbox:
            if rec[0] <= now and rec[0] < h:
                h = rec[0]  # straggler in our simulated past
        if h < _INF:
            self._rollback(h)
        for tok, rec in inbox:
            self.input_index[tok] = rec
            self.input_log.append((tok, rec))
            rt.fabric.admit_remote(rec)
        self._fossil(gvt)
        self.flush_pending = flush
        self.bound = bound
        # Checkpoint on an event-count cadence, not per round: capture
        # cost (a full owned-state snapshot) must amortize over real
        # event work, or horizon-mode runs with thousands of short
        # rounds pay more for snapshots than for simulation.  Cadence
        # is a pure rollback-depth/capture-cost tradeoff — fossil
        # collection always retains a checkpoint below GVT, so any
        # straggler keeps a legal rollback base at any cadence.
        if sim.pending_active and (
            not self.cps
            or sim.events_processed - self.cps[-1].events_processed
            >= self.cp_events
        ):
            self._checkpoint()

    def _checkpoint(self) -> None:
        self.cps.append(ShardCheckpoint.capture(
            self.rt, self.owned, len(self.input_log), len(self.sent)
        ))
        self.stats["checkpoints"] += 1

    def _rollback(self, h: float) -> None:
        rt = self.rt
        cps = self.cps
        idx = None
        for i in range(len(cps) - 1, -1, -1):
            if cps[i].now < h:
                idx = i
                break
        if idx is None:
            raise ParallelEngineError(
                f"shard {self.shard_id}: straggler at t={h!r} precedes "
                "every retained checkpoint — GVT safety violated"
            )
        cp = cps[idx]
        del cps[idx + 1:]
        self.stats["rollbacks"] += 1
        self.stats["events_rolled_back"] += (
            rt.sim.events_processed - cp.events_processed
        )
        old_now = rt.sim.now
        # Sends shipped after the checkpoint move to a stale epoch —
        # except records generated *before* the checkpoint (they sit in
        # the restored outbox and stay shipped under their token).
        tail = self.sent[cp.sent_len:]
        del self.sent[cp.sent_len:]
        stale: Dict[tuple, tuple] = {}
        for tok, raw, enc, dst, ha in tail:
            if id(raw) in cp.outbox_ids:
                continue
            self.shipped.pop(id(raw), None)
            if enc is None:  # deferred by a rollback-free barrier_state
                enc = pickle.dumps(
                    encode_record(raw), pickle.HIGHEST_PROTOCOL
                )
            stale[tok] = (enc, dst, ha)
        if stale:
            self.epochs.append(_Epoch(old_now, stale))
        cp.restore(rt)
        if self.dead:
            rt.fabric.engine_remove_records(set(self.dead))
        # Re-admit the surviving input-log tail; each entry's arrival
        # lies above cp.now (the checkpoint that would contradict that
        # was deleted by the rollback that admitted the entry).
        for _tok, rec in self.input_log[cp.input_len:]:
            if id(rec) in self.dead:
                self.orphaned.discard(id(rec))
            else:
                rt.fabric.admit_remote(rec)

    def _fossil(self, gvt: float) -> None:
        """Keep the newest checkpoint strictly below GVT (any straggler
        or anti target is >= GVT, so it is always a legal rollback
        base) and everything after it."""
        cps = self.cps
        for i in range(len(cps) - 1, 0, -1):
            if cps[i].now < gvt:
                del cps[:i]
                return

    # -- barrier step 9: speculate -------------------------------------

    def run_segment(self) -> None:
        sim = self.rt.sim
        if self.bound < _INF:
            sim.run_before(self.bound)
            return
        # Unbounded (run-to-drain) window: checkpoint mid-run on the
        # event cadence, since no round barrier will interrupt us.
        while sim.pending_active:
            sim.run(max_events=self.cp_events)
            if sim.pending_active:
                self._checkpoint()

# ---------------------------------------------------------------------------
# Worker process and coordinator
# ---------------------------------------------------------------------------


class _GvtPlanner:
    """One GVT round of coordinator arithmetic, shared by the legacy
    (coordinator-runs-shard-0) loop and the supervised coordinator so
    the two cannot drift.

    Owns the adaptive-horizon state: H=1 is exactly the conservative
    window — provably straggler-free — so collapse to it whenever a
    routed arrival lands in a shard's past (or on *any* routed
    traffic: records generated inside a round ship one barrier later,
    so any H > 1 risks a destination overrunning an in-flight
    arrival), and double it after every clean round.  Speculation is
    therefore aggressive through decoupled compute phases and
    conservative through latency-coupled (barrier/reduction) phases,
    which is where fixed horizons roll back persistently.
    """

    def __init__(self, n: int, shard_of_rank, delta: float,
                 horizon: Optional[float]) -> None:
        self.n = n
        self.shard_of_rank = shard_of_rank
        self.delta = delta
        self.horizon = horizon
        self.H = 1.0 if horizon is None else horizon
        self.h_cap = 2.0 ** 20
        self.rounds = 0

    def plan(self, states: List[tuple]) -> Tuple[
        float, float, bool, List[List[tuple]], List[List[tuple]]
    ]:
        """(gvt, bound, flush, inboxes, anti_boxes) for one round.

        ``gvt == inf`` means the run is globally drained — the caller
        broadcasts ``("done",)`` and collects finals; the other return
        values are then meaningless.
        """
        n = self.n
        self.rounds += 1
        nexts = [st[1] for st in states]
        nows = [st[5] for st in states]
        gvt = min(nexts + [st[4] for st in states])
        rec_floor = min(nexts)
        straggler = False
        inboxes: List[List[tuple]] = [[] for _ in range(n)]
        anti_boxes: List[List[tuple]] = [[] for _ in range(n)]
        for st in states:
            for tok, rec in st[2]:
                if rec[0] < gvt:
                    gvt = rec[0]
                if rec[0] < rec_floor:
                    rec_floor = rec[0]
                d = self.shard_of_rank(rec[1])
                if rec[0] <= nows[d]:
                    straggler = True
                inboxes[d].append((tok, rec))
            for dst_rank, tok, ha in st[3]:
                if ha < gvt:
                    gvt = ha
                d = self.shard_of_rank(dst_rank)
                if ha <= nows[d]:
                    straggler = True
                anti_boxes[d].append((tok, ha))
        if gvt == _INF:
            return gvt, _INF, False, inboxes, anti_boxes
        traffic = any(inboxes) or any(anti_boxes)
        # Quiescent but GVT-pinned: open epochs hold anti-message
        # candidates that can no longer regenerate (no shard has
        # work, nothing is in flight) — force their flush.
        flush = (not traffic) and all(nx == _INF for nx in nexts)
        if self.horizon is None:
            self.H = (
                1.0 if (straggler or traffic)
                else min(self.H * 2.0, self.h_cap)
            )
        bound = _INF
        if self.H < _INF and rec_floor < _INF:
            bound = rec_floor + self.H * self.delta
        return gvt, bound, flush, inboxes, anti_boxes


def _timewarp_worker(rt: "Runtime", shard_id: int, block: range, conn,
                     cp_events: int, incarnation: int = 0,
                     supervised: bool = False) -> None:
    """Worker-shard entry point (runs in a forked child)."""
    try:
        base = _enter_shard(
            rt, shard_id, block,
            clear_stats=supervised or shard_id != 0,
        )
        tw = _TimeWarpShard(rt, shard_id, block, cp_events)
        pf = _proc_injector(rt, shard_id, incarnation)
        round_no = 0
        while True:
            round_no += 1
            if pf is not None:
                pf.at_barrier(round_no)
            conn.send(tw.barrier_state())
            msg = conn.recv()
            if msg[0] == "done":
                break
            _, bound, gvt, inbox, antis, flush = msg
            tw.do_round(bound, gvt, inbox, antis, flush)
            tw.run_segment()
        payload = _final_payload(
            rt, block, base,
            include_host=supervised and shard_id == 0,
        )
        payload["events_processed"] -= len(tw.orphaned)
        payload["timewarp"] = tw.stats
        conn.send(("final", payload))
        conn.close()
    except BaseException:
        try:
            conn.send(("error", shard_id, traceback.format_exc()))
            conn.close()
        except Exception:  # pragma: no cover - pipe already gone
            pass
        os._exit(1)
    os._exit(0)


def run_timewarp(rt: "Runtime") -> float:
    """Run ``rt`` to completion under the optimistic engine.

    Serial fallbacks are identical to :func:`repro.sim.parallel.
    run_sharded` (single node, pre-scheduled events, daemonic caller,
    no ``fork``): one in-process shard, no speculation, no rollback —
    and the runtime-level fallback for fault/reliability profiles
    selects the legacy serial engine before either parallel mode is
    reached.
    """
    sim, fab = rt.sim, rt.fabric
    topo = fab.topology
    n, ctx = _fork_plan(rt)
    if n == 1:
        now = _run_serial_inline(rt)
        rt.timewarp_stats = {k: 0 for k in STAT_KEYS}
        return now

    delta = fab.min_remote_latency()
    if not delta > 0.0:
        raise ParallelEngineError(
            f"fabric lookahead must be positive, got {delta!r}"
        )
    horizon = _resolve_horizon()
    cp_events = _resolve_cp_events()
    blocks = shard_nodes(topo, n)

    from ..resilience.supervisor import resolve_supervise, supervise_timewarp

    if resolve_supervise():
        return supervise_timewarp(rt, ctx, blocks, delta, horizon, cp_events)

    from .shm import channel_pair, merge_channel_stats

    conns = []
    procs = []
    for s in range(1, n):
        # Interleave pair construction with the forks (close each
        # child end before the next pair exists) so no worker inherits
        # a sibling's lifeline child end — otherwise the coordinator's
        # EOF signal for a crashed shard would not fire until every
        # later-started sibling also exited.
        parent_end, child_end = channel_pair(ctx, rt.transport, f"s{s}")
        p = ctx.Process(
            target=_timewarp_worker,
            args=(rt, s, blocks[s], child_end, cp_events),
            daemon=True, name=f"shard{s}",
        )
        p.start()
        child_end.close()
        conns.append(parent_end)
        procs.append(p)

    try:
        base = _enter_shard(rt, 0, blocks[0])
        tw = _TimeWarpShard(rt, 0, blocks[0], cp_events)
        planner = _GvtPlanner(
            n, _make_shard_of_rank(topo, blocks), delta, horizon
        )

        while True:
            states = [tw.barrier_state()]
            for s, conn in enumerate(conns, start=1):
                msg = _recv(conn, s)
                if msg[0] != "state":
                    raise ParallelEngineError(
                        f"shard {s} sent {msg[0]!r} instead of its state"
                    )
                states.append(msg)
            gvt, bound, flush, inboxes, anti_boxes = planner.plan(states)
            tw.stats["gvt_rounds"] += 1
            if gvt == _INF:
                for conn in conns:
                    conn.send(("done",))
                break
            for s, conn in enumerate(conns, start=1):
                conn.send(("window", bound, gvt, inboxes[s],
                           anti_boxes[s], flush))
            tw.do_round(bound, gvt, inboxes[0], anti_boxes[0], flush)
            tw.run_segment()

        cpu = [time.process_time() - base["cpu"]]
        stats = dict(tw.stats)
        for s, conn in enumerate(conns, start=1):
            msg = _recv(conn, s)
            if msg[0] != "final":
                raise ParallelEngineError(
                    f"shard {s} sent {msg[0]!r} instead of its final report"
                )
            _merge_final(rt, msg[1])
            cpu.append(msg[1]["cpu"])
            for k, v in msg[1]["timewarp"].items():
                stats[k] += v
        rt._extra_events -= len(tw.orphaned)
        rt.shard_cpu_times = cpu
        rt.timewarp_stats = stats
        rt.parallel_rounds = stats["gvt_rounds"]
        rt.transport_stats = merge_channel_stats(rt.transport, conns)
    finally:
        for conn, p in zip(conns, procs):
            _reap_shard(conn, p)
    return sim.now
