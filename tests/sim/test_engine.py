"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import SimulationError, Simulator


def test_initial_state():
    sim = Simulator()
    assert sim.now == 0.0
    assert sim.pending == 0
    assert sim.events_processed == 0


def test_schedule_and_run_order():
    sim = Simulator()
    fired = []
    sim.schedule(2e-6, fired.append, "late")
    sim.schedule(1e-6, fired.append, "early")
    sim.run()
    assert fired == ["early", "late"]
    assert sim.now == pytest.approx(2e-6)


def test_ties_fire_in_schedule_order():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(1e-6, fired.append, i)
    sim.run()
    assert fired == list(range(10))


def test_priority_orders_within_tie():
    sim = Simulator()
    fired = []
    sim.schedule(1e-6, fired.append, "normal", priority=0)
    sim.schedule(1e-6, fired.append, "urgent", priority=-1)
    sim.run()
    assert fired == ["urgent", "normal"]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1e-9, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5e-6, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(1e-6, lambda: None)


def test_events_can_schedule_events():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 5:
            sim.schedule(1e-6, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3, 4, 5]
    assert sim.now == pytest.approx(5e-6)


def test_run_until_stops_clock_exactly():
    sim = Simulator()
    fired = []
    sim.schedule(1e-6, fired.append, 1)
    sim.schedule(3e-6, fired.append, 3)
    sim.run(until=2e-6)
    assert fired == [1]
    assert sim.now == pytest.approx(2e-6)
    sim.run()
    assert fired == [1, 3]


def test_run_until_includes_boundary_event():
    sim = Simulator()
    fired = []
    sim.schedule(2e-6, fired.append, "x")
    sim.run(until=2e-6)
    assert fired == ["x"]


def test_run_advances_clock_to_until_when_empty():
    sim = Simulator()
    sim.run(until=7e-6)
    assert sim.now == pytest.approx(7e-6)


def test_max_events_bound():
    sim = Simulator()
    for i in range(10):
        sim.schedule(i * 1e-6, lambda: None)
    sim.run(max_events=3)
    assert sim.events_processed == 3
    assert sim.pending == 7


def test_cancelled_event_skipped():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1e-6, fired.append, "cancelled")
    sim.schedule(2e-6, fired.append, "kept")
    ev.cancel()
    sim.run()
    assert fired == ["kept"]


def test_cancelled_events_not_counted():
    sim = Simulator()
    ev = sim.schedule(1e-6, lambda: None)
    ev.cancel()
    sim.run()
    assert sim.events_processed == 0


def test_step_fires_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1e-6, fired.append, 1)
    sim.schedule(2e-6, fired.append, 2)
    assert sim.step() is True
    assert fired == [1]
    assert sim.step() is True
    assert sim.step() is False


def test_run_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run()
        except SimulationError as e:
            errors.append(e)

    sim.schedule(1e-6, nested)
    sim.run()
    assert len(errors) == 1


def test_drain_raises_on_runaway():
    sim = Simulator()

    def forever():
        sim.schedule(1e-6, forever)

    sim.schedule(0.0, forever)
    with pytest.raises(SimulationError):
        sim.drain(max_events=100)


def test_kwargs_passed_through():
    sim = Simulator()
    got = {}
    sim.schedule(1e-6, lambda **kw: got.update(kw), a=1, b="x")
    sim.run()
    assert got == {"a": 1, "b": "x"}


def test_determinism_across_runs():
    def run_once():
        sim = Simulator()
        order = []
        for i in range(50):
            sim.schedule((i % 7) * 1e-6, order.append, i)
        sim.run()
        return order

    assert run_once() == run_once()


# ---------------------------------------------------------------------------
# Hot-path optimization: pending_active, schedule_batch, lazy compaction
# ---------------------------------------------------------------------------


def test_pending_active_excludes_cancelled():
    sim = Simulator()
    evs = [sim.schedule(i * 1e-6, lambda: None) for i in range(1, 6)]
    assert sim.pending == 5
    assert sim.pending_active == 5
    evs[0].cancel()
    evs[3].cancel()
    assert sim.pending == 5          # heap still holds the tombstones
    assert sim.pending_active == 3
    sim.run()
    assert sim.pending_active == 0
    assert sim.events_processed == 3


def test_double_cancel_counts_once():
    sim = Simulator()
    ev = sim.schedule(1e-6, lambda: None)
    ev.cancel()
    ev.cancel()
    assert sim.pending_active == 0
    sim.run()


def test_cancel_after_fire_is_noop():
    sim = Simulator()
    box = []

    def fire_and_keep():
        box.append(sim.schedule(1e-6, box.append, "late"))

    sim.schedule(1e-6, fire_and_keep)
    sim.run()
    assert box[-1] == "late"
    # cancelling the already-fired event must not disturb accounting
    box[0].cancel()
    assert sim.pending_active == 0
    sim.schedule(1e-6, lambda: None)
    assert sim.pending_active == 1


def test_drain_ignores_cancelled_leftovers():
    sim = Simulator()
    keep = sim.schedule(1e-6, lambda: None)
    dead = sim.schedule(2e-6, lambda: None)
    dead.cancel()
    sim.drain()  # must not raise: only a cancelled tombstone remains
    assert sim.events_processed == 1
    assert keep.cancelled is False


def test_schedule_batch_orders_like_individual_at():
    def run(batched: bool):
        sim = Simulator()
        order = []
        entries = [(3e-6, order.append, ("c",)),
                   (1e-6, order.append, ("a",)),
                   (2e-6, order.append, ("b",)),
                   (1e-6, order.append, ("a2",))]
        if batched:
            sim.schedule_batch(entries)
        else:
            for t, fn, args in entries:
                sim.at(t, fn, *args)
        sim.run()
        return order

    assert run(True) == run(False) == ["a", "a2", "b", "c"]


def test_schedule_batch_ties_follow_issue_order():
    sim = Simulator()
    order = []
    sim.at(1e-6, order.append, "pre")
    sim.schedule_batch([(1e-6, order.append, (f"b{i}",)) for i in range(5)])
    sim.at(1e-6, order.append, "post")
    sim.run()
    assert order == ["pre", "b0", "b1", "b2", "b3", "b4", "post"]


def test_schedule_batch_rejects_past_times():
    sim = Simulator()
    sim.schedule(1e-6, lambda: None)
    sim.run()
    assert sim.now == 1e-6
    with pytest.raises(SimulationError):
        sim.schedule_batch([(0.5e-6, lambda: None, ())])


def test_schedule_batch_large_heapify_path():
    # A batch much larger than the resident heap takes the heapify branch.
    sim = Simulator()
    sim.schedule(1e-3, lambda: None)
    order = []
    n = 200
    sim.schedule_batch([((n - i) * 1e-6, order.append, (n - i,)) for i in range(n)])
    sim.run()
    assert order == sorted(order)
    assert sim.events_processed == n + 1


def test_lazy_compaction_shrinks_heap():
    sim = Simulator()
    far = [sim.schedule(1.0 + i * 1e-6, lambda: None) for i in range(300)]
    for ev in far:
        ev.cancel()
    # The compaction threshold has passed: tombstones were dropped.
    assert sim.pending < 300
    assert sim.pending_active == 0
    sim.run()
    assert sim.events_processed == 0


def test_compaction_preserves_live_events():
    sim = Simulator()
    fired = []
    live = [sim.schedule((i + 1) * 1e-6, fired.append, i) for i in range(50)]
    dead = [sim.schedule(1.0 + i * 1e-6, lambda: None) for i in range(400)]
    for ev in dead:
        ev.cancel()
    assert sim.pending_active == len(live)
    sim.run()
    assert fired == list(range(50))


def test_compaction_inside_run_does_not_strand_the_loop():
    """Regression: ``_compact()`` used to rebind ``self._heap`` to a
    fresh list, stranding the local alias ``run()`` iterates — events
    scheduled after an in-callback compaction landed on the new list
    and the loop returned with them still pending.  Mass cancellation
    from inside a callback (the reliability layer cancels an RTO timer
    per ack) is exactly what triggers compaction mid-run."""
    sim = Simulator()
    fired = []
    victims = [sim.schedule(1.0 + i * 1e-6, lambda: None) for i in range(200)]
    survivors = [sim.schedule(2.0 + i * 1e-6, fired.append, i)
                 for i in range(40)]

    def cancel_and_continue():
        for ev in victims:  # > half the heap: compacts at least once
            ev.cancel()
        sim.schedule(1e-6, fired.append, "after")

    sim.schedule(1e-6, cancel_and_continue)
    sim.run()
    assert fired == ["after"] + list(range(40))
    assert sim.pending == 0
    assert sim.pending_active == 0


# ---------------------------------------------------------------------------
# NaN / negative-delay rejection (the schedule_batch parity bugfix)
# ---------------------------------------------------------------------------


def test_schedule_rejects_nan_delay():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(float("nan"), lambda: None)


def test_at_rejects_nan_time():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.at(float("nan"), lambda: None)


def test_schedule_batch_rejects_nan_time():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_batch([(float("nan"), lambda: None, ())])


def test_schedule_batch_rejects_negative_time():
    """Regression: a batch entry before ``now`` used to heap an event
    in the past (rewinding ``now`` when it fired); it must raise
    exactly as ``schedule``/``at`` do."""
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule_batch([(-1e-9, lambda: None, ())])


def test_schedule_batch_rejection_is_atomic():
    # A failed batch admits nothing: the heap and the tie-break
    # sequence counter are exactly as before the call.
    sim = Simulator()
    fired = []
    sim.at(2e-6, fired.append, "pre")
    seq_before = sim._seq
    with pytest.raises(SimulationError):
        sim.schedule_batch([(3e-6, fired.append, ("ok",)),
                            (-1e-6, fired.append, ("bad",))])
    assert sim.pending == 1
    assert sim._seq == seq_before
    sim.at(2e-6, fired.append, "post")
    sim.run()
    assert fired == ["pre", "post"]


# ---------------------------------------------------------------------------
# Parallel-engine primitives: next_event_time, run_before
# ---------------------------------------------------------------------------


def test_next_event_time_empty_heap_is_inf():
    sim = Simulator()
    assert sim.next_event_time() == float("inf")


def test_next_event_time_skips_cancelled_tombstones():
    sim = Simulator()
    dead = sim.schedule(1e-6, lambda: None)
    sim.schedule(2e-6, lambda: None)
    dead.cancel()
    assert sim.next_event_time() == pytest.approx(2e-6)
    assert sim.pending_active == 1
    sim.run()
    assert sim.events_processed == 1


def test_run_before_bound_is_strict():
    sim = Simulator()
    fired = []
    sim.schedule(1e-6, fired.append, "in")
    sim.schedule(2e-6, fired.append, "at-bound")
    sim.run_before(2e-6)
    assert fired == ["in"]
    assert sim.pending_active == 1
    sim.run_before(2e-6 + 1e-9)
    assert fired == ["in", "at-bound"]


def test_run_before_does_not_advance_clock_to_bound():
    # A later window may admit events between now and the old bound,
    # so the clock must stay at the last fired event.
    sim = Simulator()
    sim.schedule(1e-6, lambda: None)
    sim.run_before(5e-6)
    assert sim.now == pytest.approx(1e-6)
    fired = []
    sim.at(3e-6, fired.append, "between")  # between now and the old bound
    sim.run_before(5e-6)
    assert fired == ["between"]


def test_run_before_not_reentrant():
    sim = Simulator()
    errors = []

    def nested():
        try:
            sim.run_before(1.0)
        except SimulationError as e:
            errors.append(e)

    sim.schedule(1e-6, nested)
    sim.run_before(1.0)
    assert len(errors) == 1


def test_run_before_counts_events_and_skips_cancelled():
    sim = Simulator()
    dead = sim.schedule(1e-6, lambda: None)
    sim.schedule(2e-6, lambda: None)
    dead.cancel()
    sim.run_before(3e-6)
    assert sim.events_processed == 1
    assert sim.pending == 0


# ---------------------------------------------------------------------------
# schedule_batch x priority x in-callback cancellation across _compact
# ---------------------------------------------------------------------------


def test_schedule_batch_priority_orders_within_tie():
    sim = Simulator()
    order = []
    sim.schedule_batch([(1e-6, order.append, ("n0",)),
                        (1e-6, order.append, ("n1",))])
    sim.schedule_batch([(1e-6, order.append, ("u0",)),
                        (1e-6, order.append, ("u1",))], priority=-1)
    sim.run()
    assert order == ["u0", "u1", "n0", "n1"]


def test_batch_events_survive_in_callback_compaction():
    """Batch-admitted events (including urgent-priority ones) must
    survive a compaction triggered from inside a callback, fire in
    order, and honour in-callback cancellation of batch members."""
    sim = Simulator()
    fired = []
    victims = [sim.schedule(1.0 + i * 1e-6, lambda: None) for i in range(200)]
    batch = sim.schedule_batch(
        [(2.0 + i * 1e-6, fired.append, (i,)) for i in range(10)]
    )
    urgent = sim.schedule_batch(
        [(2.0, fired.append, ("u",))], priority=-1
    )
    assert urgent

    def cancel_and_cull():
        for ev in victims:  # > half the heap: compacts at least once
            ev.cancel()
        batch[3].cancel()   # a batch member, after the compaction
        sim.schedule_batch([(3.0, fired.append, ("late",))])

    sim.schedule(1e-6, cancel_and_cull)
    sim.run()
    assert fired == ["u"] + [i for i in range(10) if i != 3] + ["late"]
    assert sim.pending == 0
    assert sim.pending_active == 0


def test_batch_member_cancelled_before_compaction_stays_dead():
    # Cancel a batch member first, then trigger compaction from a
    # callback: the tombstone must not resurrect or double-count.
    sim = Simulator()
    fired = []
    batch = sim.schedule_batch(
        [(2.0 + i * 1e-6, fired.append, (i,)) for i in range(6)], priority=-2
    )
    batch[0].cancel()
    victims = [sim.schedule(1.0 + i * 1e-6, lambda: None) for i in range(200)]

    def cull():
        for ev in victims:
            ev.cancel()

    sim.schedule(1e-6, cull)
    sim.run()
    assert fired == [1, 2, 3, 4, 5]
    assert sim.pending_active == 0
